// Kernel throughput benchmark: events/sec of the discrete-event core.
//
// Every figure bench and tier-1 test drives the kernel in
// src/sim/simulation.hpp, so its event throughput is the ceiling on how
// many scenarios we can simulate per CPU-second. This bench pins that
// number and emits BENCH_kernel.json so the trajectory is tracked PR over
// PR. See docs/BENCHMARKS.md for the full field reference.
//
// Two axes are measured:
//
//   * new kernel vs. baseline — a faithful copy of the pre-refactor kernel
//     (std::function events in a std::priority_queue, shared_ptr-token
//     Signal) is embedded below under `legacy::` and run on the *same*
//     scenarios, so the JSON records the speedup of the allocation-free
//     kernel over its predecessor on the same machine, same build, same
//     run;
//   * heap vs. ladder vs. wheel backend — every kernel scenario runs on
//     all three event-queue backends (src/sim/event_queue.hpp),
//     selectable with --backend=heap|ladder|wheel|both|all (both = the
//     legacy heap+ladder pair; the default is all).
//
// Scenarios (kernel-level):
//   * timer_churn      — callback events rescheduling themselves,
//   * coroutine_sleep  — many processes looping over sleep_for,
//   * signal_timeout   — timed waits raced by notifications (the polling-
//                        driver idle pattern: every wait arms a timer that
//                        is then made stale/cancelled by notify),
//   * fig13_multiqueue_kernel — the event population of the fig13
//                        multiqueue experiment modelled at kernel level:
//                        >10k concurrently pending flow timers plus
//                        metronome-style timed waits. This is the regime
//                        the ladder queue exists for.
// Plus two fig13-style multiqueue Metronome scenarios on the full app
// stack (the stack is generic over the backend since the BasicX<Sim>
// refactor):
//   * fig13_multiqueue  — the original grouped-feeder scenario on the heap
//     backend, kept exactly as-is so the simulated-packets/sec trajectory
//     stays comparable PR over PR;
//   * fig13_fullstack   — the same testbed with *per-flow traffic sources*
//     (one arrival process per flow, >24k concurrently pending flow
//     timers: the population a per-flow-timed fig13 setup implies and the
//     regime the ladder queue exists for), run on every enabled backend.
//     All backends must produce identical telemetry; the JSON tracks each
//     backend's simulated-packets-per-second and the per-backend
//     full-stack speedups.
//   * fig13_fullstack_1m/4m/16m — the registered scale ladder (2^20,
//     2^22 and 2^24 per-flow sources: the wheel's home regime, the
//     beyond-LLC regime, and the memory-bandwidth wall), repeated over
//     several trials per backend; the JSON records median/IQR wall time
//     and packet rate, the wheel's speedup over heap and ladder, and the
//     for_population-selected geometry's win over the fixed 8/10/5
//     default. --fast drops the 16M rung; --flows=N swaps the ladder for
//     one custom population. A slot_bits x tick_shift wheel-geometry
//     grid sweep per population (fingerprint-gated: geometry is a pure
//     speed knob) backs the WheelConfig::for_population picker.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <utility>
#include <coroutine>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "apps/experiment.hpp"
#include "common.hpp"
#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "crypto_common.hpp"
#include "scenario/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"
#include "stats/json_writer.hpp"

namespace legacy {

using metro::sim::Task;
using metro::sim::Time;

// Faithful copy of the pre-refactor kernel (see git history of
// src/sim/simulation.hpp): type-erased std::function events, stale timers
// fired-and-ignored via armed flags, one shared_ptr token per Signal wait.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  ~Simulation() {
    events_ = {};
    for (auto h : processes_) {
      if (h) h.destroy();
    }
  }

  Time now() const noexcept { return now_; }
  metro::sim::Rng& rng() noexcept { return rng_; }

  void schedule_at(Time t, std::function<void()> fn) {
    events_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
  }
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  void spawn(Task task) {
    auto handle = task.release();
    processes_.push_back(handle);
    schedule_after(0, [handle] {
      if (!handle.done()) handle.resume();
    });
  }

  Time run() {
    while (!events_.empty()) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.at;
      ++processed_;
      ev.fn();
    }
    return now_;
  }

  std::uint64_t events_processed() const noexcept { return processed_; }

  auto sleep_for(Time d) {
    struct Awaiter {
      Simulation& sim;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_after(delay, [h] {
          if (!h.done()) h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::coroutine_handle<Task::promise_type>> processes_;
  metro::sim::Rng rng_;
};

class Signal {
 public:
  explicit Signal(Simulation& sim) : sim_(sim) {}

  auto wait_for(Time timeout) { return WaitAwaiter{*this, timeout, nullptr}; }

  void notify_all() {
    if (waiters_.empty()) return;
    auto woken = std::move(waiters_);
    waiters_.clear();
    for (auto& t : woken) {
      if (!t->armed) continue;
      t->armed = false;
      t->notified = true;
      auto h = t->handle;
      sim_.schedule_after(0, [h] {
        if (!h.done()) h.resume();
      });
    }
  }

 private:
  struct Token {
    std::coroutine_handle<> handle;
    bool armed = true;
    bool notified = false;
  };

  struct WaitAwaiter {
    Signal& sig;
    Time timeout;
    std::shared_ptr<Token> token;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      token = std::make_shared<Token>();
      token->handle = h;
      sig.waiters_.push_back(token);
      if (timeout >= 0) {
        auto t = token;
        sig.sim_.schedule_after(timeout, [t] {
          if (!t->armed) return;
          t->armed = false;
          t->notified = false;
          if (!t->handle.done()) t->handle.resume();
        });
      }
    }
    bool await_resume() const noexcept { return token && token->notified; }
  };

  Simulation& sim_;
  std::vector<std::shared_ptr<Token>> waiters_;
};

}  // namespace legacy

namespace {

using metro::sim::BasicSignal;
using metro::sim::BasicSimulation;
using metro::sim::BinaryHeapBackend;
using metro::sim::LadderQueueBackend;
using metro::sim::TimingWheelBackend;
using metro::sim::Task;
using metro::sim::Time;

double wall_seconds(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - from).count();
}

// --- scenario bodies, templated over the kernel implementation -------------

template <typename Sim>
void timer_churn(Sim& sim, std::uint64_t chains, std::uint64_t events_per_chain) {
  // `chains` self-rescheduling callbacks, offset so timestamps interleave.
  struct Reschedule {
    Sim* sim;
    std::uint64_t left;
    Time period;
    void operator()() {
      if (left == 0) return;
      sim->schedule_after(period, Reschedule{sim, left - 1, period});
    }
  };
  for (std::uint64_t c = 0; c < chains; ++c) {
    sim.schedule_after(static_cast<Time>(c), Reschedule{&sim, events_per_chain, 100 + static_cast<Time>(c % 7)});
  }
  sim.run();
}

template <typename Sim>
Task sleeper_proc(Sim& sim, std::uint64_t iters, Time period) {
  for (std::uint64_t i = 0; i < iters; ++i) co_await sim.sleep_for(period);
}

template <typename Sim>
void coroutine_sleep(Sim& sim, std::uint64_t procs, std::uint64_t iters) {
  for (std::uint64_t p = 0; p < procs; ++p) {
    sim.spawn(sleeper_proc(sim, iters, 50 + static_cast<Time>(p % 13)));
  }
  sim.run();
}

template <typename Sim, typename Sig>
Task signal_waiter(Sim& sim, Sig& sig, std::uint64_t iters, Time timeout) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    (void)co_await sig.wait_for(timeout);
  }
  (void)sim;
}

template <typename Sim, typename Sig>
Task signal_notifier(Sim& sim, Sig& sig, std::uint64_t iters, Time period) {
  for (std::uint64_t i = 0; i < iters; ++i) {
    co_await sim.sleep_for(period);
    sig.notify_all();
  }
}

template <typename Sim, typename Sig>
void signal_timeout(Sim& sim, Sig& sig, std::uint64_t waiters, std::uint64_t iters) {
  // Notify every 1 us; each wait arms a 10 us timeout that the notify makes
  // stale (legacy) or cancels (new) — the polling-driver idle pattern.
  for (std::uint64_t w = 0; w < waiters; ++w) {
    sim.spawn(signal_waiter(sim, sig, iters, 10'000));
  }
  sim.spawn(signal_notifier(sim, sig, iters + 1, 1'000));
  sim.run();
}

// The fig13 multiqueue event population at kernel level: kFlows
// concurrently pending per-flow timers (the >10k regime where a binary
// heap pays ~14 levels per op), 2 queue signals, 4 metronome-style threads
// on 15 us timed waits, notifies at burst cadence. Workload is identical
// on every backend (pure kernel objects, fixed iteration counts).
constexpr std::uint64_t kFig13Flows = 12288;

template <typename Sim, typename Sig>
void fig13_multiqueue_kernel(Sim& sim, Sig& q0, Sig& q1, std::uint64_t scale) {
  struct FlowTimer {
    Sim* sim;
    std::uint64_t left;
    Time period;
    void operator()() {
      if (left == 0) return;
      sim->schedule_after(period, FlowTimer{sim, left - 1, period});
    }
  };
  const std::uint64_t per_flow = scale * 50;
  for (std::uint64_t f = 0; f < kFig13Flows; ++f) {
    // Periods spread 50..150 us so the pending population stays dense and
    // timestamps interleave across the full horizon.
    const Time period = 50'000 + static_cast<Time>((f * 8'191) % 100'000);
    sim.schedule_after(static_cast<Time>(f), FlowTimer{&sim, per_flow, period});
  }
  const std::uint64_t met_iters = scale * 40'000;
  sim.spawn(signal_waiter(sim, q0, met_iters, 15'000));
  sim.spawn(signal_waiter(sim, q0, met_iters, 15'000));
  sim.spawn(signal_waiter(sim, q1, met_iters, 15'000));
  sim.spawn(signal_waiter(sim, q1, met_iters, 15'000));
  sim.spawn(signal_notifier(sim, q0, met_iters, 27'000));
  sim.spawn(signal_notifier(sim, q1, met_iters, 31'000));
  sim.run();
}

struct Run {
  double wall = 0.0;           // seconds for the fixed workload
  std::uint64_t events = 0;    // events the kernel processed to do it
  bool ran = false;
  double eps() const { return ran && wall > 0 ? static_cast<double>(events) / wall : 0.0; }
};

template <typename Fn>
Run measure(Fn&& run_kernel) {
  Run r;
  const auto t0 = std::chrono::steady_clock::now();
  r.events = run_kernel();
  r.wall = wall_seconds(t0);
  r.ran = true;
  return r;
}

// Both kernels simulate the *identical* workload, so the honest comparison
// is wall time for equal work. Note the legacy kernel also executes stale
// timeout events as no-ops (they count towards its raw event number but do
// no useful work); events/sec is therefore normalised to the useful-event
// count (the new kernel's, which fires no stale events) on both sides.
struct ScenarioResult {
  Run base;    // legacy kernel (baseline)
  Run heap;    // BinaryHeapBackend
  Run ladder;  // LadderQueueBackend
  Run wheel;   // TimingWheelBackend
  const Run& best_new() const { return heap.ran ? heap : (ladder.ran ? ladder : wheel); }
  double speedup(const Run& next) const {
    return next.wall > 0 ? base.wall / next.wall : 0.0;
  }
  // Useful-event rate: both backends process the same useful events.
  double eps(const Run& next) const {
    return next.wall > 0 ? static_cast<double>(best_new().events) / next.wall : 0.0;
  }
  double baseline_eps() const {
    return base.wall > 0 ? static_cast<double>(best_new().events) / base.wall : 0.0;
  }
  double baseline_raw_eps() const {
    return base.wall > 0 ? static_cast<double>(base.events) / base.wall : 0.0;
  }
};

// --- fig13 full-stack scenarios -------------------------------------------

// The fig13 multiqueue testbed (scenario::fig13_testbed(): XL710, 2
// queues, 4 Metronome threads, 37 Mpps), with this bench's traditional
// short windows so the trajectory series stays comparable PR over PR.
metro::apps::ExperimentConfig fig13_config(bool fast) {
  auto cfg = metro::scenario::fig13_testbed();
  cfg.warmup = 50 * metro::sim::kMillisecond;
  cfg.measure = (fast ? 100 : 400) * metro::sim::kMillisecond;
  return cfg;
}

// Per-flow-source population for fig13_fullstack: >24k pending flow timers
// (the registered "fig13_fullstack_perflow" scenario, which the geometry
// sweep below also runs).
constexpr std::size_t kFullstackFlows = 24576;

struct FullstackRun {
  double wall = 0.0;
  double pps = 0.0;   // simulated packets / wall second
  double eps = 0.0;   // kernel events / wall second
  double throughput_mpps = 0.0;
  // Cross-backend identity: the full-telemetry fingerprint (every
  // registered metric, the same check bench_fig13_14_multiqueue runs);
  // counters kept for the divergence diagnostic print.
  std::uint64_t fingerprint = 0;
  metro::scenario::ShardCounters counters;
  std::size_t pending = 0;  // pending events at measurement start
  bool ran = false;
};

FullstackRun from_shard(const metro::scenario::ShardResult& r) {
  FullstackRun out;
  out.wall = r.wall_seconds;
  out.pps = static_cast<double>(r.counters.processed) / out.wall;
  out.eps = static_cast<double>(r.events) / out.wall;
  out.throughput_mpps = r.result.throughput_mpps;
  out.fingerprint = r.fingerprint;
  out.counters = r.counters;
  out.pending = r.pending_at_measure;
  out.ran = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Wall time *is* this bench's headline metric, so sweeps default to one
  // job — concurrent shards would contend for cache/memory bandwidth and
  // distort per-shard wall numbers. --jobs=N is available for quick looks.
  const auto args = metro::bench::parse_args(argc, argv, metro::bench::BackendChoice::kAll, 1);
  const bool fast = args.fast;
  const bool heap_on = metro::bench::use_heap(args.backend);
  const bool ladder_on = metro::bench::use_ladder(args.backend);
  const bool wheel_on = metro::bench::use_wheel(args.backend);
  const std::uint64_t scale = fast ? 1 : 4;

  metro::bench::header(
      "Kernel throughput — events/sec: legacy baseline vs heap vs ladder vs wheel",
      "allocation-free POD-event kernel should clear 2x the legacy kernel; the "
      "ladder backend should reach parity or better at >10k pending events; the "
      "wheel should dominate both at the 2^20-flow population");

  ScenarioResult timer, sleep, signal, fig13k;

  // --- legacy baselines (run once; scenario workloads are identical) ----
  timer.base = measure([&] {
    legacy::Simulation sim;
    timer_churn(sim, 64, scale * 20'000);
    return sim.events_processed();
  });
  sleep.base = measure([&] {
    legacy::Simulation sim;
    coroutine_sleep(sim, 256, scale * 5'000);
    return sim.events_processed();
  });
  signal.base = measure([&] {
    legacy::Simulation sim;
    legacy::Signal sig(sim);
    signal_timeout(sim, sig, 64, scale * 10'000);
    return sim.events_processed();
  });
  fig13k.base = measure([&] {
    legacy::Simulation sim;
    legacy::Signal q0(sim), q1(sim);
    fig13_multiqueue_kernel(sim, q0, q1, scale);
    return sim.events_processed();
  });

  // --- both new backends on the same scenarios --------------------------
  const auto run_backend = [&](auto backend_tag) {
    using Backend = decltype(backend_tag);
    using Sim = BasicSimulation<Backend>;
    using Sig = BasicSignal<Sim>;
    std::array<Run, 4> out;
    out[0] = measure([&] {
      Sim sim;
      timer_churn(sim, 64, scale * 20'000);
      return sim.events_processed();
    });
    out[1] = measure([&] {
      Sim sim;
      coroutine_sleep(sim, 256, scale * 5'000);
      return sim.events_processed();
    });
    out[2] = measure([&] {
      Sim sim;
      Sig sig(sim);
      signal_timeout(sim, sig, 64, scale * 10'000);
      return sim.events_processed();
    });
    out[3] = measure([&] {
      Sim sim;
      Sig q0(sim), q1(sim);
      fig13_multiqueue_kernel(sim, q0, q1, scale);
      return sim.events_processed();
    });
    return out;
  };

  if (heap_on) {
    const auto r = run_backend(BinaryHeapBackend{});
    timer.heap = r[0];
    sleep.heap = r[1];
    signal.heap = r[2];
    fig13k.heap = r[3];
  }
  if (ladder_on) {
    const auto r = run_backend(LadderQueueBackend{});
    timer.ladder = r[0];
    sleep.ladder = r[1];
    signal.ladder = r[2];
    fig13k.ladder = r[3];
  }
  if (wheel_on) {
    const auto r = run_backend(TimingWheelBackend{});
    timer.wheel = r[0];
    sleep.wheel = r[1];
    signal.wheel = r[2];
    fig13k.wheel = r[3];
  }

  // Overall: geometric mean across the three classic scenarios (kept
  // comparable with the PR-1 trajectory; fig13_multiqueue_kernel is
  // reported separately as the large-population scenario).
  const auto geomean3 = [](double a, double b, double c) { return std::cbrt(a * b * c); };
  const double overall_base =
      geomean3(timer.baseline_eps(), sleep.baseline_eps(), signal.baseline_eps());
  const double overall_heap =
      heap_on ? geomean3(timer.eps(timer.heap), sleep.eps(sleep.heap), signal.eps(signal.heap))
              : 0.0;
  const double overall_ladder =
      ladder_on
          ? geomean3(timer.eps(timer.ladder), sleep.eps(sleep.ladder), signal.eps(signal.ladder))
          : 0.0;
  const double overall_wheel =
      wheel_on
          ? geomean3(timer.eps(timer.wheel), sleep.eps(sleep.wheel), signal.eps(signal.wheel))
          : 0.0;

  // Fig. 13-style multiqueue Metronome scenario on the full app stack,
  // grouped feeder, heap backend — kept as the PR-over-PR trajectory
  // number (same scenario as before the stack went backend-generic).
  const auto cfg = fig13_config(fast);
  const auto t0 = std::chrono::steady_clock::now();
  metro::apps::Testbed bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  bed.begin_measurement();
  bed.run_until(cfg.warmup + cfg.measure);
  const auto result = bed.finish_measurement();
  const double fig13_wall = wall_seconds(t0);
  const double fig13_pkts = static_cast<double>(bed.packets_processed());
  const double fig13_eps = static_cast<double>(bed.sim().events_processed()) / fig13_wall;
  const double fig13_pps = fig13_pkts / fig13_wall;

  // fig13_fullstack: the same testbed with one arrival process per flow —
  // kFullstackFlows concurrently pending timers — on every enabled
  // backend, driven as a SweepRunner shard list over the registered
  // "fig13_fullstack_perflow" scenario. The tracked number: per-backend
  // simulated packets/sec.
  const auto* fs_scenario = metro::scenario::find_scenario("fig13_fullstack_perflow");
  if (fs_scenario == nullptr) {
    std::cerr << "fig13_fullstack_perflow missing from the scenario registry\n";
    return 2;
  }
  auto fs_cfg = fs_scenario->config;  // per-flow Poisson sources, 24576 flows
  // The windows this scenario has always used *in this bench* (since PR 3,
  // pre-registry) — shorter than the registry defaults — so the tracked
  // fig13_fullstack series stays comparable PR over PR.
  fs_cfg.warmup = 20 * metro::sim::kMillisecond;
  fs_cfg.measure = (fast ? 60 : 200) * metro::sim::kMillisecond;
  std::vector<metro::scenario::Shard> fs_shards;
  for (const auto backend : metro::bench::backend_kinds(args.backend)) {
    fs_shards.push_back(metro::scenario::Shard{fs_scenario->name, backend, fs_cfg});
  }
  const auto fs_results = metro::scenario::SweepRunner(args.jobs).run(fs_shards);
  FullstackRun fs_heap, fs_ladder, fs_wheel;
  for (std::size_t i = 0; i < fs_shards.size(); ++i) {
    switch (fs_shards[i].backend) {
      case metro::scenario::BackendKind::kHeap: fs_heap = from_shard(fs_results[i]); break;
      case metro::scenario::BackendKind::kLadder: fs_ladder = from_shard(fs_results[i]); break;
      case metro::scenario::BackendKind::kWheel: fs_wheel = from_shard(fs_results[i]); break;
    }
  }
  // Pairwise identity across every backend that ran, anchored on the
  // first one (divergence between any two implies divergence vs. the
  // anchor).
  bool fullstack_diverged = false;
  {
    const FullstackRun* anchor = nullptr;
    const char* anchor_name = nullptr;
    const std::array<std::pair<const FullstackRun*, const char*>, 3> runs{
        {{&fs_heap, "heap"}, {&fs_ladder, "ladder"}, {&fs_wheel, "wheel"}}};
    for (const auto& [run, name] : runs) {
      if (!run->ran) continue;
      if (anchor == nullptr) {
        anchor = run;
        anchor_name = name;
        continue;
      }
      if (run->fingerprint == anchor->fingerprint) continue;
      fullstack_diverged = true;
      const auto& a = anchor->counters;
      const auto& b = run->counters;
      std::cerr << "BACKEND DIVERGENCE in fig13_fullstack (telemetry fingerprint "
                << anchor->fingerprint << " vs " << run->fingerprint << "): " << anchor_name
                << " rx/drop/tx/processed " << a.rx << "/" << a.dropped << "/" << a.tx << "/"
                << a.processed << " vs " << name << " " << b.rx << "/" << b.dropped << "/"
                << b.tx << "/" << b.processed << "\n";
    }
  }

  // Ladder rung/spill geometry sweep (the ROADMAP open item): the
  // fig13_fullstack_perflow scenario as a SweepRunner matrix over a
  // buckets x bottom_spill grid, same seed and windows as the fs_ runs
  // above. Geometry is a pure speed knob, so every grid point must
  // reproduce the default geometry's counters bit for bit; the best wall
  // time (and the whole grid) lands in BENCH_kernel.json.
  std::vector<metro::scenario::Shard> geo_shards;
  std::vector<FullstackRun> geo_runs;
  bool geometry_diverged = false;
  std::size_t geo_best = 0;
  if (ladder_on) {
    for (const std::uint32_t buckets : {16u, 32u, 64u}) {
      for (const std::size_t spill : {std::size_t{32}, std::size_t{64}, std::size_t{128}}) {
        auto cfg = fs_cfg;
        cfg.ladder = metro::sim::LadderConfig{buckets, 32, spill};
        geo_shards.push_back(metro::scenario::Shard{
            fs_scenario->name, metro::scenario::BackendKind::kLadder, cfg});
      }
    }
    const auto out = metro::scenario::SweepRunner(args.jobs).run(geo_shards);
    for (const auto& r : out) geo_runs.push_back(from_shard(r));
    for (std::size_t i = 0; i < geo_runs.size(); ++i) {
      if (geo_runs[i].fingerprint != fs_ladder.fingerprint) {
        geometry_diverged = true;
        std::cerr << "GEOMETRY DIVERGENCE at buckets=" << geo_shards[i].config.ladder.buckets
                  << " spill=" << geo_shards[i].config.ladder.bottom_spill
                  << ": telemetry differs from the default-geometry run\n";
      }
      if (geo_runs[i].wall < geo_runs[geo_best].wall) geo_best = i;
    }
  }

  // Full-stack scale ladder: fig13_fullstack_1m/4m/16m (2^20 / 2^22 /
  // 2^24 per-flow sources) — the wheel's home regime, then the beyond-LLC
  // regime and the memory-bandwidth wall. Wall time is noisy at these run
  // lengths, so every enabled backend is repeated over several trials
  // (serially: wall is the metric) and the JSON records median/IQR. On
  // top of the cross-backend identity check, the wheel runs twice per
  // trial wherever for_population() picks a non-default geometry: once
  // with the registry's auto geometry and once with the fixed 8/10/5
  // default, so the auto-selection win is measured, not assumed. The
  // execution itself is deterministic: every trial of every backend and
  // every geometry must produce one and the same telemetry fingerprint.
  // --fast drops the 16M population (tier-1 CI budget); --flows=N swaps
  // the whole ladder for one custom population built from the 1M
  // scenario's testbed.
  struct ScaleSamples {
    std::vector<double> wall;
    std::vector<double> pps;
    FullstackRun last;  // deterministic fields (pending, counters, fingerprint)
    bool ran = false;
    void add(const FullstackRun& r) {
      wall.push_back(r.wall);
      pps.push_back(r.pps);
      last = r;
      ran = true;
    }
  };
  struct PopulationResult {
    std::string name;                    // scenario (or synthetic --flows label)
    metro::apps::ExperimentConfig cfg;   // bench windows + --flows applied
    int trials = 0;
    std::array<ScaleSamples, 3> backend;  // indexed by BackendKind: heap, ladder, wheel
    ScaleSamples wheel_fixed;             // wheel under the fixed 8/10/5 default
    bool fixed_distinct = false;          // for_population() != default geometry
    bool diverged = false;
    std::uint64_t fp = 0;
    bool have_fp = false;
  };
  std::vector<PopulationResult> pops;
  {
    std::vector<std::pair<const char*, int>> plan;  // scenario, trials
    if (args.flows == 0) {
      plan.emplace_back("fig13_fullstack_1m", fast ? 2 : 3);
      plan.emplace_back("fig13_fullstack_4m", fast ? 2 : 3);
      if (!fast) plan.emplace_back("fig13_fullstack_16m", 2);
    } else {
      plan.emplace_back("fig13_fullstack_1m", fast ? 2 : 3);  // testbed template
    }
    for (const auto& [sname, trials] : plan) {
      const auto* spec = metro::scenario::find_scenario(sname);
      if (spec == nullptr) {
        std::cerr << sname << " missing from the scenario registry\n";
        return 2;
      }
      PopulationResult pr;
      pr.name = spec->name;
      pr.cfg = spec->config;
      pr.trials = trials;
      if (args.flows != 0) {
        pr.name = "fig13_fullstack_custom";
        pr.cfg.workload.n_flows = args.flows;
        pr.cfg.wheel = metro::sim::WheelConfig::for_population(args.flows);
      }
      if (fast) pr.cfg.measure = 10 * metro::sim::kMillisecond;
      const metro::sim::WheelConfig def{};
      pr.fixed_distinct = pr.cfg.wheel.slot_bits != def.slot_bits ||
                          pr.cfg.wheel.tick_shift != def.tick_shift ||
                          pr.cfg.wheel.levels != def.levels;
      pops.push_back(std::move(pr));
    }
  }
  bool scale_diverged = false;
  for (auto& pr : pops) {
    for (int trial = 0; trial < pr.trials; ++trial) {
      std::vector<metro::scenario::Shard> shards;
      std::vector<int> slot;  // 0..2 = BackendKind index, 3 = wheel_fixed
      for (const auto backend : metro::bench::backend_kinds(args.backend)) {
        shards.push_back(metro::scenario::Shard{pr.name, backend, pr.cfg});
        slot.push_back(static_cast<int>(backend));
      }
      if (wheel_on && pr.fixed_distinct) {
        auto cfg = pr.cfg;
        cfg.wheel = metro::sim::WheelConfig{};
        shards.push_back(
            metro::scenario::Shard{pr.name, metro::scenario::BackendKind::kWheel, cfg});
        slot.push_back(3);
      }
      const auto out = metro::scenario::SweepRunner(1).run(shards);
      for (std::size_t i = 0; i < shards.size(); ++i) {
        const auto r = from_shard(out[i]);
        if (slot[i] == 3) {
          pr.wheel_fixed.add(r);
        } else {
          pr.backend[static_cast<std::size_t>(slot[i])].add(r);
        }
        if (!pr.have_fp) {
          pr.have_fp = true;
          pr.fp = r.fingerprint;
        } else if (r.fingerprint != pr.fp) {
          pr.diverged = true;
          scale_diverged = true;
          std::cerr << "DIVERGENCE in " << pr.name << ": "
                    << (slot[i] == 3 ? "wheel(8/10/5)"
                                     : metro::scenario::backend_name(shards[i].backend))
                    << " trial " << trial << " fingerprint " << r.fingerprint << " != " << pr.fp
                    << "\n";
        }
      }
    }
  }
  const auto quantile = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  };
  const auto median = [&](const std::vector<double>& v) { return quantile(v, 0.5); };
  const auto iqr = [&](const std::vector<double>& v) {
    return quantile(v, 0.75) - quantile(v, 0.25);
  };

  // Wheel geometry sweep: a slot_bits x tick_shift grid over every scale
  // population, levels filled in as the deepest hierarchy the kernel's
  // tick_shift + levels*slot_bits <= 62 bound admits (capped at the
  // default 5). This is the measurement WheelConfig::for_population()
  // encodes: the winner per population. Geometry is a pure speed knob —
  // every grid point must reproduce the population's fingerprint bit for
  // bit. One trial per point (the medians the picker is built from come
  // from the repeated-trial scale block above); the 16M population gets
  // the reduced grid even in full mode to keep the bench's wall time
  // bounded.
  struct GeoPoint {
    metro::sim::WheelConfig cfg;
    FullstackRun run;
  };
  struct GeoSweep {
    std::vector<GeoPoint> points;
    std::size_t best = 0;
    bool ran = false;
  };
  std::vector<GeoSweep> geo_sweeps(pops.size());
  bool wheel_geo_diverged = false;
  if (wheel_on) {
    for (std::size_t p = 0; p < pops.size(); ++p) {
      auto& pr = pops[p];
      const bool small_grid = fast || pr.cfg.workload.n_flows >= (std::size_t{1} << 24);
      const std::vector<std::uint32_t> sbs =
          small_grid ? std::vector<std::uint32_t>{8, 12} : std::vector<std::uint32_t>{8, 10, 12};
      const std::vector<std::uint32_t> tss =
          small_grid ? std::vector<std::uint32_t>{10, 16}
                     : std::vector<std::uint32_t>{10, 13, 16};
      auto& sweep = geo_sweeps[p];
      std::vector<metro::scenario::Shard> shards;
      for (const auto sb : sbs) {
        for (const auto ts : tss) {
          const metro::sim::WheelConfig wc{sb, ts, std::min(5u, (62u - ts) / sb)};
          auto cfg = pr.cfg;
          cfg.wheel = wc;
          shards.push_back(
              metro::scenario::Shard{pr.name, metro::scenario::BackendKind::kWheel, cfg});
          sweep.points.push_back(GeoPoint{wc, {}});
        }
      }
      const auto out = metro::scenario::SweepRunner(1).run(shards);
      for (std::size_t i = 0; i < out.size(); ++i) {
        sweep.points[i].run = from_shard(out[i]);
        if (pr.have_fp && sweep.points[i].run.fingerprint != pr.fp) {
          wheel_geo_diverged = true;
          std::cerr << "GEOMETRY DIVERGENCE in " << pr.name << " at wheel "
                    << sweep.points[i].cfg.slot_bits << "/" << sweep.points[i].cfg.tick_shift
                    << "/" << sweep.points[i].cfg.levels
                    << ": telemetry differs from the scale-block runs\n";
        }
        if (sweep.points[i].run.wall < sweep.points[sweep.best].run.wall) sweep.best = i;
      }
      sweep.ran = true;
    }
  }

  const auto row = [&](const char* name, const ScenarioResult& r) {
    std::cout << "  " << name << ": legacy " << metro::bench::num(r.baseline_eps() / 1e6)
              << " M useful events/s (raw " << metro::bench::num(r.baseline_raw_eps() / 1e6)
              << " incl. stale no-ops)";
    if (r.heap.ran) {
      std::cout << " | heap " << metro::bench::num(r.eps(r.heap) / 1e6) << " M/s (x"
                << metro::bench::num(r.speedup(r.heap)) << ")";
    }
    if (r.ladder.ran) {
      std::cout << " | ladder " << metro::bench::num(r.eps(r.ladder) / 1e6) << " M/s (x"
                << metro::bench::num(r.speedup(r.ladder)) << ")";
    }
    if (r.wheel.ran) {
      std::cout << " | wheel " << metro::bench::num(r.eps(r.wheel) / 1e6) << " M/s (x"
                << metro::bench::num(r.speedup(r.wheel)) << ")";
    }
    std::cout << "\n";
  };
  row("timer_churn            ", timer);
  row("coroutine_sleep        ", sleep);
  row("signal_timeout         ", signal);
  row("fig13_multiqueue_kernel", fig13k);
  std::cout << "  overall (geomean of first three): legacy "
            << metro::bench::num(overall_base / 1e6) << " M/s";
  if (heap_on) {
    std::cout << " | heap " << metro::bench::num(overall_heap / 1e6) << " M/s (x"
              << metro::bench::num(overall_heap / overall_base) << ")";
  }
  if (ladder_on) {
    std::cout << " | ladder " << metro::bench::num(overall_ladder / 1e6) << " M/s (x"
              << metro::bench::num(overall_ladder / overall_base) << ")";
  }
  if (wheel_on) {
    std::cout << " | wheel " << metro::bench::num(overall_wheel / 1e6) << " M/s (x"
              << metro::bench::num(overall_wheel / overall_base) << ")";
  }
  std::cout << "\n";
  if (heap_on && ladder_on) {
    std::cout << "  fig13 kernel scenario, ladder vs heap: x"
              << metro::bench::num(fig13k.heap.wall / fig13k.ladder.wall) << " wall ("
              << kFig13Flows << "+ pending events)\n";
  }
  if (heap_on && wheel_on) {
    std::cout << "  fig13 kernel scenario, wheel vs heap: x"
              << metro::bench::num(fig13k.heap.wall / fig13k.wheel.wall) << " wall ("
              << kFig13Flows << "+ pending events)\n";
  }
  std::cout << "\n  fig13 multiqueue (full stack, grouped feeder, heap): "
            << metro::bench::num(fig13_pps / 1e6) << " M simulated packets/s, "
            << metro::bench::num(fig13_eps / 1e6) << " M events/s, wall "
            << metro::bench::num(fig13_wall) << " s, throughput "
            << metro::bench::num(result.throughput_mpps, 1) << " Mpps simulated\n";

  const auto fs_row = [](const char* name, const FullstackRun& r) {
    if (!r.ran) return;
    std::cout << "  fig13 fullstack (" << kFullstackFlows << " per-flow sources, " << name
              << "): " << metro::bench::num(r.pps / 1e6) << " M simulated packets/s, "
              << metro::bench::num(r.eps / 1e6) << " M events/s, wall "
              << metro::bench::num(r.wall) << " s, " << r.pending << " pending events\n";
  };
  fs_row("heap", fs_heap);
  fs_row("ladder", fs_ladder);
  fs_row("wheel", fs_wheel);
  if (fs_heap.ran && fs_ladder.ran) {
    std::cout << "  fig13 fullstack, ladder vs heap: x"
              << metro::bench::num(fs_heap.wall / fs_ladder.wall) << " wall";
  }
  if (fs_heap.ran && fs_wheel.ran) {
    std::cout << " | wheel vs heap: x" << metro::bench::num(fs_heap.wall / fs_wheel.wall)
              << " wall";
  }
  if ((fs_heap.ran && fs_ladder.ran) || (fs_heap.ran && fs_wheel.ran)) {
    std::cout << (fullstack_diverged ? "  [TELEMETRY DIVERGED]" : "  (identical telemetry)")
              << "\n";
  }
  if (!geo_runs.empty()) {
    std::cout << "\n  ladder geometry sweep (" << geo_runs.size()
              << " grid points, buckets x bottom_spill, sort_threshold 32):\n";
    for (std::size_t i = 0; i < geo_runs.size(); ++i) {
      const auto& g = geo_shards[i].config.ladder;
      std::cout << "    " << g.buckets << "/" << g.sort_threshold << "/" << g.bottom_spill
                << ": wall " << metro::bench::num(geo_runs[i].wall) << " s, "
                << metro::bench::num(geo_runs[i].pps / 1e6) << " M pkt/s"
                << (i == geo_best ? "  <- best" : "") << "\n";
    }
    const auto& best = geo_shards[geo_best].config.ladder;
    std::cout << "    best geometry: " << best.buckets << "/" << best.sort_threshold << "/"
              << best.bottom_spill << " vs default-geometry wall "
              << metro::bench::num(fs_ladder.wall) << " s"
              << (geometry_diverged ? "  [TELEMETRY DIVERGED]" : "") << "\n";
  }

  const auto scale_row = [&](const char* name, const ScaleSamples& b) {
    if (!b.ran) return;
    std::cout << "    " << name << ": wall median " << metro::bench::num(median(b.wall))
              << " s (IQR " << metro::bench::num(iqr(b.wall)) << "), "
              << metro::bench::num(median(b.pps) / 1e6) << " M simulated packets/s, "
              << b.last.pending << " pending events\n";
  };
  for (const auto& pr : pops) {
    const auto& wc = pr.cfg.wheel;
    std::cout << "\n  " << pr.name << " (" << pr.cfg.workload.n_flows << " per-flow sources, "
              << pr.trials << " trials per backend, wheel " << wc.slot_bits << "/"
              << wc.tick_shift << "/" << wc.levels << "):\n";
    scale_row("heap        ", pr.backend[0]);
    scale_row("ladder      ", pr.backend[1]);
    scale_row("wheel(auto) ", pr.backend[2]);
    scale_row("wheel(8/10/5)", pr.wheel_fixed);
    const auto& wheel = pr.backend[2];
    if (wheel.ran && pr.backend[0].ran) {
      std::cout << "    wheel vs heap: x"
                << metro::bench::num(median(pr.backend[0].wall) / median(wheel.wall));
      if (pr.backend[1].ran) {
        std::cout << ", wheel vs ladder: x"
                  << metro::bench::num(median(pr.backend[1].wall) / median(wheel.wall));
      }
      if (pr.wheel_fixed.ran) {
        std::cout << ", auto vs fixed geometry: x"
                  << metro::bench::num(median(pr.wheel_fixed.wall) / median(wheel.wall));
      }
      std::cout << (pr.diverged ? "  [TELEMETRY DIVERGED]" : "  (identical telemetry)") << "\n";
    }
  }
  for (std::size_t p = 0; p < geo_sweeps.size(); ++p) {
    const auto& sweep = geo_sweeps[p];
    if (!sweep.ran || sweep.points.empty()) continue;
    std::cout << "\n  wheel geometry sweep, " << pops[p].name << " (" << sweep.points.size()
              << " grid points, slot_bits x tick_shift):\n";
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      const auto& pt = sweep.points[i];
      std::cout << "    " << pt.cfg.slot_bits << "/" << pt.cfg.tick_shift << "/"
                << pt.cfg.levels << ": wall " << metro::bench::num(pt.run.wall) << " s, "
                << metro::bench::num(pt.run.pps / 1e6) << " M pkt/s"
                << (i == sweep.best ? "  <- best" : "") << "\n";
    }
  }

  // --- crypto substrate summary + fig16 live-crypto delta ----------------
  // Headline numbers only; the full scalar/ttable/auto matrix is
  // bench_crypto's job (BENCH_crypto.json). Tracked here too so the kernel
  // JSON carries the crypto trajectory PR over PR alongside events/sec.
  namespace cryptob = metro::bench::cryptob;
  using cryptob::Sample;
  const int crypto_trials = fast ? 5 : 7;
  const std::span<const std::uint8_t, 16> ckey(cryptob::kBenchKey);
  const metro::crypto::AesCbc c_fast(ckey);
  const metro::crypto::ScalarAesCbc c_scalar(ckey);
  std::vector<std::uint8_t> cbuf(1024);
  for (std::size_t i = 0; i < cbuf.size(); ++i) cbuf[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t cbc_iters = 2'000 * scale;
  const Sample cbc_enc_scalar =
      cryptob::time_ns_per_op(crypto_trials, cbc_iters, [&](std::uint64_t n) {
        return cryptob::cbc_loop<metro::crypto::ScalarAesCbc, false>(c_scalar, cbuf, n);
      });
  const Sample cbc_enc_fast =
      cryptob::time_ns_per_op(crypto_trials, cbc_iters, [&](std::uint64_t n) {
        return cryptob::cbc_loop<metro::crypto::AesCbc, false>(c_fast, cbuf, n);
      });
  const Sample cbc_dec_scalar =
      cryptob::time_ns_per_op(crypto_trials, cbc_iters, [&](std::uint64_t n) {
        return cryptob::cbc_loop<metro::crypto::ScalarAesCbc, true>(c_scalar, cbuf, n);
      });
  const Sample cbc_dec_fast =
      cryptob::time_ns_per_op(crypto_trials, cbc_iters, [&](std::uint64_t n) {
        return cryptob::cbc_loop<metro::crypto::AesCbc, true>(c_fast, cbuf, n);
      });
  const std::vector<std::uint8_t> c_auth_key(20, 0xa5);
  const metro::crypto::HmacSha1 h_fast(c_auth_key);
  const metro::crypto::ScalarHmacSha1 h_scalar(c_auth_key);
  const std::vector<std::uint8_t> c_msg(64, 0x5a);
  const std::uint64_t hmac_iters = 10'000 * scale;
  const Sample hmac_scalar =
      cryptob::time_ns_per_op(crypto_trials, hmac_iters,
                              [&](std::uint64_t n) { return cryptob::hmac_loop(h_scalar, c_msg, n); });
  const Sample hmac_fast =
      cryptob::time_ns_per_op(crypto_trials, hmac_iters,
                              [&](std::uint64_t n) { return cryptob::hmac_loop(h_fast, c_msg, n); });
  const auto c_sa = cryptob::bench_sa();
  metro::net::Packet c_tmpl;
  metro::net::build_udp_packet(c_tmpl, {metro::net::ipv4_addr(192, 168, 1, 5),
                                        metro::net::ipv4_addr(192, 168, 2, 9), 5555, 6666,
                                        metro::net::kIpProtoUdp});
  const std::vector<std::uint8_t> c_inner(c_tmpl.data(), c_tmpl.data() + c_tmpl.size());
  metro::apps::IpsecGateway gw_fast_eg(c_sa), gw_fast_in(c_sa);
  metro::apps::ScalarIpsecGateway gw_scalar_eg(c_sa), gw_scalar_in(c_sa);
  const std::uint64_t esp_iters = 10'000 * scale;
  const Sample esp_scalar =
      cryptob::time_ns_per_op(crypto_trials, esp_iters, [&](std::uint64_t n) {
        return cryptob::gateway_loop(gw_scalar_eg, gw_scalar_in, c_inner, n);
      });
  const Sample esp_fast = cryptob::time_ns_per_op(crypto_trials, esp_iters, [&](std::uint64_t n) {
    return cryptob::gateway_loop(gw_fast_eg, gw_fast_in, c_inner, n);
  });
  const auto to_pps = [](const Sample& s) { return s.median > 0.0 ? 1e9 / s.median : 0.0; };
  const char* aes_impl =
      metro::crypto::Aes128::hardware_available() ? "aesni" : "ttable";

  // fig16 ipsec live-crypto delta: the paper's max-rate IPsec point
  // (5.61 Mpps, Metronome, heap) run calibrated, then with the real ESP
  // gateway per packet (fast and scalar substrates). Simulated results
  // must be bit-identical — the hook is wall-clock-only by construction —
  // so the delta isolates what the crypto substrate costs end to end.
  const auto w16 = metro::bench::windows(fast);
  metro::apps::ExperimentConfig icfg;
  icfg.driver = metro::apps::DriverKind::kMetronome;
  icfg.met.per_packet_cost = metro::sim::calib::kIpsecPerPacketCost;
  icfg.n_cores = 3;
  icfg.workload.rate_mpps = 5.61;
  icfg.warmup = w16.warmup;
  icfg.measure = w16.measure;
  cryptob::LiveGatewayWorker<metro::apps::IpsecGateway> live_fast_worker(c_sa);
  cryptob::LiveGatewayWorker<metro::apps::ScalarIpsecGateway> live_scalar_worker(c_sa);
  std::vector<metro::scenario::Shard> ishards(
      3, metro::scenario::Shard{"fig16_ipsec_5.61mpps_metronome",
                                metro::scenario::BackendKind::kHeap, icfg});
  ishards[1].config.met.packet_work = metro::nic::PacketWork(live_fast_worker);
  ishards[2].config.met.packet_work = metro::nic::PacketWork(live_scalar_worker);
  const auto iruns = metro::scenario::SweepRunner(1).run(ishards);
  const bool live_identical = iruns[0].fingerprint == iruns[1].fingerprint &&
                              iruns[1].fingerprint == iruns[2].fingerprint;
  const auto live_pps = [](const metro::scenario::ShardResult& r) {
    return r.wall_seconds > 0.0 ? static_cast<double>(r.counters.processed) / r.wall_seconds : 0.0;
  };

  std::cout << "\n  crypto substrate (auto path: " << aes_impl << ", median of " << crypto_trials
            << " trials):\n"
            << "    AES-CBC-1024B encrypt " << metro::bench::num(cbc_enc_scalar.median, 0)
            << " -> " << metro::bench::num(cbc_enc_fast.median, 0) << " ns (x"
            << metro::bench::num(cryptob::speedup(cbc_enc_scalar, cbc_enc_fast)) << "), decrypt "
            << metro::bench::num(cbc_dec_scalar.median, 0) << " -> "
            << metro::bench::num(cbc_dec_fast.median, 0) << " ns (x"
            << metro::bench::num(cryptob::speedup(cbc_dec_scalar, cbc_dec_fast)) << ")\n"
            << "    HMAC-SHA1-96 64B " << metro::bench::num(hmac_scalar.median, 0) << " -> "
            << metro::bench::num(hmac_fast.median, 0) << " ns (x"
            << metro::bench::num(cryptob::speedup(hmac_scalar, hmac_fast)) << ")\n"
            << "    ESP encap+decap " << metro::bench::num(to_pps(esp_scalar), 0) << " -> "
            << metro::bench::num(to_pps(esp_fast), 0) << " pkt/s (x"
            << metro::bench::num(cryptob::speedup(esp_scalar, esp_fast)) << ")\n"
            << "  fig16 ipsec 5.61 Mpps Metronome, calibrated vs live crypto:\n"
            << "    calibrated wall " << metro::bench::num(iruns[0].wall_seconds, 3)
            << " s | live fast wall " << metro::bench::num(iruns[1].wall_seconds, 3) << " s ("
            << metro::bench::num(live_pps(iruns[1]), 0) << " sim-pkt/s) | live scalar wall "
            << metro::bench::num(iruns[2].wall_seconds, 3) << " s ("
            << metro::bench::num(live_pps(iruns[2]), 0) << " sim-pkt/s)"
            << (live_identical ? "  (identical telemetry)" : "  [TELEMETRY DIVERGED]") << "\n";

  // Machine-readable artifact, emitted through the one JSON path
  // (stats::JsonWriter). Field names unchanged from the hand-rolled
  // schema except counters_identical -> telemetry_identical (the check is
  // a full-telemetry fingerprint now, see docs/BENCHMARKS.md).
  std::ofstream json_file("BENCH_kernel.json");
  metro::stats::JsonWriter w(json_file);
  w.begin_object();
  w.kv("bench", "kernel_throughput");
  w.kv("fast_mode", fast);
  w.key("backends").begin_array();
  if (heap_on) w.value("heap");
  if (ladder_on) w.value("ladder");
  if (wheel_on) w.value("wheel");
  w.end_array();
  w.key("scenarios").begin_object();
  const auto emit_backend_run = [&w](const char* key, const ScenarioResult& r, const Run& run) {
    w.key(key).begin_object();
    w.kv("events_per_sec", r.eps(run));
    w.kv("wall_seconds", run.wall);
    w.kv("speedup_vs_legacy", r.speedup(run));
    w.end_object();
  };
  const auto emit = [&](const char* name, const ScenarioResult& r) {
    w.key(name).begin_object();
    w.kv("baseline_events_per_sec", r.baseline_eps());
    w.kv("baseline_raw_events_per_sec", r.baseline_raw_eps());
    w.kv("baseline_wall_seconds", r.base.wall);
    if (r.heap.ran) emit_backend_run("heap", r, r.heap);
    if (r.ladder.ran) emit_backend_run("ladder", r, r.ladder);
    if (r.wheel.ran) emit_backend_run("wheel", r, r.wheel);
    w.end_object();
  };
  emit("timer_churn", timer);
  emit("coroutine_sleep", sleep);
  emit("signal_timeout", signal);
  emit("fig13_multiqueue_kernel", fig13k);
  w.end_object();
  w.key("overall").begin_object();
  w.kv("baseline_events_per_sec", overall_base);
  if (heap_on) {
    w.kv("heap_events_per_sec", overall_heap);
    w.kv("heap_speedup", overall_heap / overall_base);
  }
  if (ladder_on) {
    w.kv("ladder_events_per_sec", overall_ladder);
    w.kv("ladder_speedup", overall_ladder / overall_base);
  }
  if (wheel_on) {
    w.kv("wheel_events_per_sec", overall_wheel);
    w.kv("wheel_speedup", overall_wheel / overall_base);
  }
  w.end_object();
  if (heap_on && ladder_on) {
    w.kv("fig13_kernel_ladder_vs_heap_speedup", fig13k.heap.wall / fig13k.ladder.wall);
  }
  if (heap_on && wheel_on) {
    w.kv("fig13_kernel_wheel_vs_heap_speedup", fig13k.heap.wall / fig13k.wheel.wall);
  }
  w.key("fig13_fullstack").begin_object();
  w.kv("n_flows", static_cast<std::uint64_t>(kFullstackFlows));
  w.kv("per_flow_sources", true);
  const auto emit_fs = [&w](const char* key, const FullstackRun& r) {
    if (!r.ran) return;
    w.key(key).begin_object();
    w.kv("simulated_packets_per_sec", r.pps);
    w.kv("events_per_sec", r.eps);
    w.kv("wall_seconds", r.wall);
    w.kv("simulated_throughput_mpps", r.throughput_mpps);
    w.kv("pending_events", static_cast<std::uint64_t>(r.pending));
    w.end_object();
  };
  emit_fs("heap", fs_heap);
  emit_fs("ladder", fs_ladder);
  emit_fs("wheel", fs_wheel);
  if (fs_heap.ran && fs_ladder.ran) {
    w.kv("ladder_vs_heap_speedup", fs_heap.wall / fs_ladder.wall);
  }
  if (fs_heap.ran && fs_wheel.ran) {
    w.kv("wheel_vs_heap_speedup", fs_heap.wall / fs_wheel.wall);
  }
  if ((fs_heap.ran && fs_ladder.ran) || (fs_heap.ran && fs_wheel.ran)) {
    w.kv("telemetry_identical", !fullstack_diverged);
  }
  w.end_object();
  if (!geo_runs.empty()) {
    w.key("ladder_geometry_sweep").begin_object();
    w.kv("scenario", "fig13_fullstack_perflow");
    w.key("grid").begin_array();
    for (std::size_t i = 0; i < geo_runs.size(); ++i) {
      const auto& g = geo_shards[i].config.ladder;
      w.begin_object();
      w.kv("buckets", static_cast<std::uint64_t>(g.buckets));
      w.kv("sort_threshold", static_cast<std::uint64_t>(g.sort_threshold));
      w.kv("bottom_spill", static_cast<std::uint64_t>(g.bottom_spill));
      w.kv("wall_seconds", geo_runs[i].wall);
      w.kv("simulated_packets_per_sec", geo_runs[i].pps);
      w.end_object();
    }
    w.end_array();
    const auto& best = geo_shards[geo_best].config.ladder;
    w.key("best").begin_object();
    w.kv("buckets", static_cast<std::uint64_t>(best.buckets));
    w.kv("sort_threshold", static_cast<std::uint64_t>(best.sort_threshold));
    w.kv("bottom_spill", static_cast<std::uint64_t>(best.bottom_spill));
    w.kv("wall_seconds", geo_runs[geo_best].wall);
    w.end_object();
    w.kv("default_geometry_wall_seconds", fs_ladder.wall);
    w.kv("telemetry_identical", !geometry_diverged);
    w.end_object();
  }
  const auto emit_scale_samples = [&](const char* key, const ScaleSamples& b) {
    if (!b.ran) return;
    w.key(key).begin_object();
    w.kv("wall_seconds_median", median(b.wall));
    w.kv("wall_seconds_iqr", iqr(b.wall));
    w.kv("simulated_packets_per_sec_median", median(b.pps));
    w.kv("simulated_packets_per_sec_iqr", iqr(b.pps));
    w.kv("pending_events", static_cast<std::uint64_t>(b.last.pending));
    w.end_object();
  };
  const auto emit_population = [&](const PopulationResult& pr) {
    w.kv("n_flows", static_cast<std::uint64_t>(pr.cfg.workload.n_flows));
    w.kv("per_flow_sources", true);
    w.kv("trials", static_cast<std::uint64_t>(pr.trials));
    emit_scale_samples("heap", pr.backend[0]);
    emit_scale_samples("ladder", pr.backend[1]);
    emit_scale_samples("wheel", pr.backend[2]);
    emit_scale_samples("wheel_fixed", pr.wheel_fixed);
    w.key("wheel_geometry").begin_object();
    w.kv("slot_bits", static_cast<std::uint64_t>(pr.cfg.wheel.slot_bits));
    w.kv("tick_shift", static_cast<std::uint64_t>(pr.cfg.wheel.tick_shift));
    w.kv("levels", static_cast<std::uint64_t>(pr.cfg.wheel.levels));
    w.end_object();
    const auto& wheel = pr.backend[2];
    if (wheel.ran && pr.backend[0].ran) {
      w.kv("wheel_vs_heap_speedup", median(pr.backend[0].wall) / median(wheel.wall));
    }
    if (wheel.ran && pr.backend[1].ran) {
      w.kv("wheel_vs_ladder_speedup", median(pr.backend[1].wall) / median(wheel.wall));
    }
    if (wheel.ran && pr.wheel_fixed.ran) {
      w.kv("wheel_auto_vs_fixed_speedup", median(pr.wheel_fixed.wall) / median(wheel.wall));
    }
    w.kv("telemetry_identical", !pr.diverged);
  };
  // The tracked 1M block keeps its historical shape (and key) so the
  // PR-over-PR trajectory stays comparable; the scale block below carries
  // the full ladder including the 1M population.
  for (const auto& pr : pops) {
    if (pr.name != "fig13_fullstack_1m") continue;
    w.key("fig13_fullstack_1m").begin_object();
    emit_population(pr);
    w.end_object();
  }
  w.key("fig13_fullstack_scale").begin_object();
  w.key("populations").begin_object();
  for (const auto& pr : pops) {
    w.key(pr.name.c_str()).begin_object();
    emit_population(pr);
    w.end_object();
  }
  w.end_object();
  w.kv("telemetry_identical", !scale_diverged);
  w.end_object();
  {
    bool any_sweep = false;
    for (const auto& s : geo_sweeps) any_sweep = any_sweep || (s.ran && !s.points.empty());
    if (any_sweep) {
      w.key("wheel_geometry_sweep").begin_object();
      w.key("populations").begin_object();
      for (std::size_t p = 0; p < geo_sweeps.size(); ++p) {
        const auto& sweep = geo_sweeps[p];
        if (!sweep.ran || sweep.points.empty()) continue;
        w.key(pops[p].name.c_str()).begin_object();
        w.kv("n_flows", static_cast<std::uint64_t>(pops[p].cfg.workload.n_flows));
        w.key("grid").begin_array();
        for (const auto& pt : sweep.points) {
          w.begin_object();
          w.kv("slot_bits", static_cast<std::uint64_t>(pt.cfg.slot_bits));
          w.kv("tick_shift", static_cast<std::uint64_t>(pt.cfg.tick_shift));
          w.kv("levels", static_cast<std::uint64_t>(pt.cfg.levels));
          w.kv("wall_seconds", pt.run.wall);
          w.kv("simulated_packets_per_sec", pt.run.pps);
          w.end_object();
        }
        w.end_array();
        const auto& best = sweep.points[sweep.best];
        w.key("best").begin_object();
        w.kv("slot_bits", static_cast<std::uint64_t>(best.cfg.slot_bits));
        w.kv("tick_shift", static_cast<std::uint64_t>(best.cfg.tick_shift));
        w.kv("levels", static_cast<std::uint64_t>(best.cfg.levels));
        w.kv("wall_seconds", best.run.wall);
        w.end_object();
        w.end_object();
      }
      w.end_object();
      w.kv("telemetry_identical", !wheel_geo_diverged);
      w.end_object();
    }
  }
  w.key("fig13_multiqueue").begin_object();
  w.kv("backend", "heap");
  w.kv("simulated_packets_per_sec", fig13_pps);
  w.kv("events_per_sec", fig13_eps);
  w.kv("wall_seconds", fig13_wall);
  w.kv("simulated_throughput_mpps", result.throughput_mpps);
  w.end_object();
  w.key("crypto").begin_object();
  w.kv("aes_impl", aes_impl);
  w.kv("trials", static_cast<std::uint64_t>(crypto_trials));
  const auto emit_sample = [&w](const char* name, const Sample& s) {
    w.key(name).begin_object();
    w.kv("ns_median", s.median);
    w.kv("ns_iqr", s.iqr);
    w.end_object();
  };
  emit_sample("aes_cbc_1024_encrypt_scalar", cbc_enc_scalar);
  emit_sample("aes_cbc_1024_encrypt_fast", cbc_enc_fast);
  w.kv("aes_cbc_1024_encrypt_speedup", cryptob::speedup(cbc_enc_scalar, cbc_enc_fast));
  emit_sample("aes_cbc_1024_decrypt_scalar", cbc_dec_scalar);
  emit_sample("aes_cbc_1024_decrypt_fast", cbc_dec_fast);
  w.kv("aes_cbc_1024_decrypt_speedup", cryptob::speedup(cbc_dec_scalar, cbc_dec_fast));
  emit_sample("hmac_sha1_96_64b_scalar", hmac_scalar);
  emit_sample("hmac_sha1_96_64b_fast", hmac_fast);
  w.kv("hmac_sha1_96_64b_speedup", cryptob::speedup(hmac_scalar, hmac_fast));
  emit_sample("esp_encap_decap_scalar", esp_scalar);
  emit_sample("esp_encap_decap_fast", esp_fast);
  w.kv("esp_encap_decap_scalar_pps", to_pps(esp_scalar));
  w.kv("esp_encap_decap_fast_pps", to_pps(esp_fast));
  w.kv("esp_encap_decap_speedup", cryptob::speedup(esp_scalar, esp_fast));
  w.key("fig16_ipsec_live").begin_object();
  w.kv("rate_mpps", 5.61);
  w.kv("driver", "metronome");
  w.kv("backend", "heap");
  w.kv("calibrated_wall_seconds", iruns[0].wall_seconds);
  w.kv("live_fast_wall_seconds", iruns[1].wall_seconds);
  w.kv("live_scalar_wall_seconds", iruns[2].wall_seconds);
  w.kv("live_fast_sim_pkts_per_sec", live_pps(iruns[1]));
  w.kv("live_scalar_sim_pkts_per_sec", live_pps(iruns[2]));
  w.kv("live_fast_slowdown_vs_calibrated",
       iruns[0].wall_seconds > 0.0 ? iruns[1].wall_seconds / iruns[0].wall_seconds : 0.0);
  w.kv("telemetry_identical", live_identical);
  w.end_object();
  w.end_object();
  w.end_object();
  w.finish();
  if (fullstack_diverged || geometry_diverged || scale_diverged || wheel_geo_diverged) {
    std::cout << "\nwrote BENCH_kernel.json ("
              << (fullstack_diverged   ? "BACKEND"
                  : geometry_diverged ? "LADDER-GEOMETRY"
                  : scale_diverged    ? "SCALE-LADDER"
                                      : "WHEEL-GEOMETRY") << " DIVERGENCE — failing)\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_kernel.json\n";
  return 0;
}
