// Ablations of Metronome's design choices (DESIGN.md §6). Not a paper
// figure — these justify the decisions the paper makes by argument:
//   1. primary/backup timeout diversity vs equal timeouts (§IV-A),
//   2. adaptive TS (eq. 13) vs the best fixed TS under a varying load,
//   3. sticky-primary + random-backup queue selection vs fully random
//      vs fully sticky (§IV-E),
//   4. Tx batch 32 vs 1 (§V-C),
//   5. hr_sleep vs tuned nanosleep as the Metronome sleep service.
#include "common.hpp"

using namespace metro;

namespace {

apps::ExperimentConfig base(const bench::Windows& w, double mpps = 14.88) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.workload.rate_mpps = mpps;
  cfg.warmup = w.warmup;
  cfg.measure = w.measure;
  return cfg;
}

void row(stats::Table& t, const std::string& name, const apps::ExperimentResult& r) {
  t.add_row({name, bench::num(r.cpu_percent, 1), bench::num(r.busy_tries_pct, 1),
             bench::num(r.latency_us.mean, 1), bench::num(r.loss_permille, 3)});
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Ablation - Metronome design choices",
                "each paper design choice wins on the axis it was chosen for");

  // 1. Primary/backup diversity, at high and low load.
  {
    stats::Table t({"strategy", "CPU (%)", "busy tries (%)", "mean lat (us)", "loss (permille)"});
    for (const double mpps : {14.88, 1.488}) {
      auto diverse = base(w, mpps);
      auto equal = base(w, mpps);
      equal.met.primary_backup = false;
      row(t, "primary/backup @" + bench::num(mpps, 1) + " Mpps", apps::run_experiment(diverse));
      row(t, "equal timeouts @" + bench::num(mpps, 1) + " Mpps", apps::run_experiment(equal));
    }
    std::cout << "[1] primary/backup vs equal timeouts\n";
    t.print();
    std::cout << "\n";
  }

  // 2. Adaptive vs fixed TS across loads (fixed tuned for line rate).
  {
    stats::Table t({"strategy", "CPU (%)", "busy tries (%)", "mean lat (us)", "loss (permille)"});
    for (const double mpps : {14.88, 1.488}) {
      auto adaptive = base(w, mpps);
      auto fixed = base(w, mpps);
      fixed.met.adaptive = false;
      fixed.met.fixed_ts = 10 * sim::kMicrosecond;  // eq. 13's high-load answer
      row(t, "adaptive TS @" + bench::num(mpps, 1) + " Mpps", apps::run_experiment(adaptive));
      row(t, "fixed TS=10us @" + bench::num(mpps, 1) + " Mpps", apps::run_experiment(fixed));
    }
    std::cout << "[2] adaptive (eq. 13) vs fixed TS\n";
    t.print();
    std::cout << "(fixed TS wastes wake-ups at low load where adaptive triples its sleep)\n\n";
  }

  // 3. Multi-queue next-queue selection strategies.
  {
    stats::Table t({"strategy", "CPU (%)", "busy tries (%)", "mean lat (us)", "loss (permille)"});
    for (int variant = 0; variant < 3; ++variant) {
      auto cfg = base(w, 30.0);
      cfg.xl710 = true;
      cfg.n_queues = 4;
      cfg.n_cores = 5;
      cfg.met.n_threads = 5;
      cfg.met.target_vacation = 15 * sim::kMicrosecond;
      cfg.workload.n_flows = 4096;
      const char* name = "sticky primary + random backup";
      if (variant == 1) {
        cfg.met.sticky_primary = false;
        name = "fully random";
      } else if (variant == 2) {
        cfg.met.random_backup = false;
        name = "fully sticky";
      }
      row(t, name, apps::run_experiment(cfg));
    }
    std::cout << "[3] next-queue selection (4 queues, 30 Mpps)\n";
    t.print();
    std::cout << "\n";
  }

  // 4. Tx batch threshold at low rate.
  {
    stats::Table t({"strategy", "CPU (%)", "busy tries (%)", "mean lat (us)", "loss (permille)"});
    auto b32 = base(w, 0.744);
    b32.tx_batch = 32;
    auto b1 = base(w, 0.744);
    b1.tx_batch = 1;
    row(t, "tx batch 32 @0.5Gbps", apps::run_experiment(b32));
    row(t, "tx batch 1  @0.5Gbps", apps::run_experiment(b1));
    std::cout << "[4] Tx batch threshold\n";
    t.print();
    std::cout << "\n";
  }

  // 5. Sleep service choice.
  {
    stats::Table t({"strategy", "CPU (%)", "busy tries (%)", "mean lat (us)", "loss (permille)"});
    auto hr = base(w);
    auto ns = base(w);
    ns.met.sleep.kind = sim::SleepKind::kNanosleep;
    ns.met.sleep.timer_slack = sim::kMicrosecond;
    auto ns_default = base(w);
    ns_default.met.sleep.kind = sim::SleepKind::kNanosleep;
    ns_default.met.sleep.timer_slack = sim::calib::kDefaultTimerSlack;
    row(t, "hr_sleep", apps::run_experiment(hr));
    row(t, "nanosleep (slack 1us)", apps::run_experiment(ns));
    row(t, "nanosleep (default 50us slack)", apps::run_experiment(ns_default));
    std::cout << "[5] sleep service\n";
    t.print();
  }
  return 0;
}
