// Figure 16: CPU usage of the two other ported applications — the IPsec
// security gateway and the FloWatcher traffic monitor — static polling vs
// Metronome, single Rx queue.
//
// Backend-generic: --backend=heap|ladder|both selects the event-queue
// backend(s) the stack runs on (default heap; results are bit-identical
// across backends, only the simulation speed differs).
#include "common.hpp"

using namespace metro;

namespace {

template <typename Sim>
void run_app(const char* name, sim::Time per_packet_cost, const std::vector<double>& rates,
             const bench::Windows& w) {
  stats::Table table({"rate (Mpps)", "driver", "CPU (%)", "throughput (Mpps)"});
  for (const double mpps : rates) {
    for (const bool metronome : {false, true}) {
      apps::ExperimentConfig cfg;
      cfg.driver = metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
      cfg.met.per_packet_cost = per_packet_cost;
      cfg.polling.per_packet_cost = per_packet_cost;
      cfg.n_cores = 3;
      cfg.workload.rate_mpps = mpps;
      cfg.warmup = w.warmup;
      cfg.measure = w.measure;
      const auto r = apps::run_experiment<Sim>(cfg);
      table.add_row({bench::num(mpps, 2), metronome ? "Metronome" : "static DPDK",
                     bench::num(r.cpu_percent, 1), bench::num(r.throughput_mpps, 2)});
    }
  }
  std::cout << name << "\n";
  table.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const auto choice = bench::backend_choice(argc, argv, bench::BackendChoice::kHeap);
  const auto w = bench::windows(fast);

  bench::header("Figure 16 - IPsec gateway and FloWatcher CPU usage",
                "IPsec: both reach the same 5.61 Mpps max (one Metronome thread never "
                "releases the lock there -> ~100% CPU); Metronome wins as rate drops. "
                "FloWatcher: ~50% CPU gain at line rate, ~5x at 0.5 Mpps");

  bench::for_each_backend(choice, [&](auto tag, const std::string& backend) {
    using Sim = typename decltype(tag)::type;
    if (choice == bench::BackendChoice::kBoth) {
      std::cout << "--- backend: " << backend << " ---\n\n";
    }
    run_app<Sim>("IPsec Security Gateway (AES-CBC 128 ESP tunnel)",
                 sim::calib::kIpsecPerPacketCost, {5.61, 3.0, 1.0, 0.5, 0.1}, w);
    run_app<Sim>("FloWatcher-DPDK (run-to-completion flow monitor)",
                 sim::calib::kFlowatcherPerPacketCost, {14.88, 10.0, 5.0, 1.0, 0.5}, w);
  });
  return 0;
}
