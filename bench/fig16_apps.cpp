// Figure 16: CPU usage of the two other ported applications — the IPsec
// security gateway and the FloWatcher traffic monitor — static polling vs
// Metronome, single Rx queue.
//
// Backend-generic: --backend=heap|ladder|wheel|both|all selects the event-queue
// backend(s) the stack runs on (default heap; results are bit-identical
// across backends, only the simulation speed differs). Both apps' rate x
// driver matrices run through scenario::SweepRunner on --jobs workers.
//
// --crypto=live switches the IPsec matrix from charging the calibrated
// per-packet cost to *also* executing the real ESP gateway (AES-CBC 128 +
// HMAC-SHA1-96, encap then decap) for every drained descriptor, via the
// drivers' nic::PacketWork hook. Simulated results are bit-identical to
// the calibrated mode — the hook runs on the wall clock only — and the
// bench asserts exactly that by comparing telemetry fingerprints shard by
// shard. What changes is wall time, so live mode reports wall-clock
// simulated-packets/s and the live/calibrated slowdown per shard.
#include <cstdint>
#include <memory>

#include "common.hpp"
#include "crypto_common.hpp"

using namespace metro;
using scenario::Shard;

namespace {

struct App {
  const char* title;
  sim::Time per_packet_cost;
  std::vector<double> rates;
};

/// The IPsec matrix (ipsec-only in live mode; first app row below).
std::vector<Shard> ipsec_shards(const std::vector<scenario::BackendKind>& backends,
                                const std::vector<double>& rates, const bench::Windows& w) {
  std::vector<Shard> shards;
  for (const auto backend : backends) {
    for (const double mpps : rates) {
      for (const bool metronome : {false, true}) {
        apps::ExperimentConfig cfg;
        cfg.driver = metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
        cfg.met.per_packet_cost = sim::calib::kIpsecPerPacketCost;
        cfg.polling.per_packet_cost = sim::calib::kIpsecPerPacketCost;
        cfg.n_cores = 3;
        cfg.workload.rate_mpps = mpps;
        cfg.warmup = w.warmup;
        cfg.measure = w.measure;
        shards.push_back(Shard{"IPsec Security Gateway (AES-CBC 128 ESP tunnel)", backend, cfg});
      }
    }
  }
  return shards;
}

/// --crypto=live: calibrated reference sweep, then the same shards with a
/// live ESP worker hooked into every driver, fingerprint-checked pairwise.
int run_live(const bench::Args& args) {
  const auto w = bench::windows(args.fast);
  const auto backends = bench::backend_kinds(args.backend);

  bench::header("Figure 16 (live crypto) - IPsec gateway, real ESP per packet",
                "simulated results identical to calibrated mode (fingerprint-checked); "
                "wall time now contains the crypto substrate");

  const std::vector<Shard> shards = ipsec_shards(backends, {5.61, 3.0, 1.0, 0.5, 0.1}, w);
  // Live workers are stateful and wall time is the headline, so both
  // sweeps run sequentially regardless of --jobs.
  const auto calibrated = scenario::SweepRunner(1).run(shards);

  const auto sa = bench::cryptob::bench_sa();
  using Worker = bench::cryptob::LiveGatewayWorker<apps::IpsecGateway>;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<Shard> live_shards = shards;
  for (auto& s : live_shards) {
    workers.push_back(std::make_unique<Worker>(sa));
    s.config.met.packet_work = nic::PacketWork(*workers.back());
    s.config.polling.packet_work = nic::PacketWork(*workers.back());
  }
  const auto live = scenario::SweepRunner(1).run(live_shards);

  if (scenario::failed_count(calibrated) + scenario::failed_count(live) > 0) {
    std::cerr << scenario::failure_summary(shards, calibrated)
              << scenario::failure_summary(live_shards, live);
    return 1;
  }

  bool identical = true;
  stats::Table table({"backend", "rate (Mpps)", "driver", "CPU (%)", "calib wall (s)",
                      "live wall (s)", "live sim-pkt/s", "slowdown"});
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (calibrated[i].fingerprint != live[i].fingerprint) {
      std::cerr << "FAIL: shard " << i << " telemetry fingerprint diverged between "
                << "calibrated and live crypto modes\n";
      identical = false;
    }
    const bool metronome = shards[i].config.driver == apps::DriverKind::kMetronome;
    const double pkt_per_s = live[i].wall_seconds > 0.0
                                 ? static_cast<double>(live[i].counters.processed) /
                                       live[i].wall_seconds
                                 : 0.0;
    const double slowdown = calibrated[i].wall_seconds > 0.0
                                ? live[i].wall_seconds / calibrated[i].wall_seconds
                                : 0.0;
    table.add_row({scenario::backend_name(shards[i].backend),
                   bench::num(shards[i].config.workload.rate_mpps, 2),
                   metronome ? "Metronome" : "static DPDK",
                   bench::num(live[i].result.cpu_percent, 1),
                   bench::num(calibrated[i].wall_seconds, 3),
                   bench::num(live[i].wall_seconds, 3), bench::num(pkt_per_s, 0),
                   bench::num(slowdown, 2)});
  }
  table.print();
  std::uint64_t live_work = 0;
  for (const auto& wkr : workers) live_work += wkr->processed();
  std::cout << "\nlive ESP round trips executed: " << live_work
            << (identical ? "\nsimulated results identical to calibrated mode (fingerprints match)\n"
                          : "\n");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, bench::BackendChoice::kHeap,
                                      bench::default_jobs());
  if (args.crypto == bench::CryptoMode::kLive) return run_live(args);
  const auto w = bench::windows(args.fast);
  const auto backends = bench::backend_kinds(args.backend);

  bench::header("Figure 16 - IPsec gateway and FloWatcher CPU usage",
                "IPsec: both reach the same 5.61 Mpps max (one Metronome thread never "
                "releases the lock there -> ~100% CPU); Metronome wins as rate drops. "
                "FloWatcher: ~50% CPU gain at line rate, ~5x at 0.5 Mpps");

  const std::vector<App> apps_under_test = {
      {"IPsec Security Gateway (AES-CBC 128 ESP tunnel)", sim::calib::kIpsecPerPacketCost,
       {5.61, 3.0, 1.0, 0.5, 0.1}},
      {"FloWatcher-DPDK (run-to-completion flow monitor)",
       sim::calib::kFlowatcherPerPacketCost, {14.88, 10.0, 5.0, 1.0, 0.5}}};

  // The shard label carries the app title; rate and driver are read back
  // from each shard's config at print time, so rows cannot mispair with
  // results however the loops above them change.
  std::vector<Shard> shards;
  for (const auto backend : backends) {
    for (const auto& app : apps_under_test) {
      for (const double mpps : app.rates) {
        for (const bool metronome : {false, true}) {
          apps::ExperimentConfig cfg;
          cfg.driver =
              metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
          cfg.met.per_packet_cost = app.per_packet_cost;
          cfg.polling.per_packet_cost = app.per_packet_cost;
          cfg.n_cores = 3;
          cfg.workload.rate_mpps = mpps;
          cfg.warmup = w.warmup;
          cfg.measure = w.measure;
          shards.push_back(Shard{app.title, backend, cfg});
        }
      }
    }
  }
  const auto results = scenario::SweepRunner(args.jobs).run(shards);

  // Print in shard order, flushing a table whenever the app (shard label)
  // or backend changes.
  const auto table_header = [] {
    return stats::Table({"rate (Mpps)", "driver", "CPU (%)", "throughput (Mpps)"});
  };
  stats::Table table = table_header();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Shard& s = shards[i];
    if (i == 0 || s.backend != shards[i - 1].backend) {
      if (backends.size() > 1) {
        std::cout << "--- backend: " << scenario::backend_name(s.backend) << " ---\n\n";
      }
    }
    if (i == 0 || s.scenario != shards[i - 1].scenario ||
        s.backend != shards[i - 1].backend) {
      std::cout << s.scenario << "\n";
    }
    const bool metronome = s.config.driver == apps::DriverKind::kMetronome;
    const auto& r = results[i].result;
    table.add_row({bench::num(s.config.workload.rate_mpps, 2),
                   metronome ? "Metronome" : "static DPDK", bench::num(r.cpu_percent, 1),
                   bench::num(r.throughput_mpps, 2)});
    const bool last = i + 1 == shards.size();
    if (last || shards[i + 1].scenario != s.scenario ||
        shards[i + 1].backend != s.backend) {
      table.print();
      std::cout << "\n";
      table = table_header();
    }
  }
  return 0;
}
