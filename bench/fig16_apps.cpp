// Figure 16: CPU usage of the two other ported applications — the IPsec
// security gateway and the FloWatcher traffic monitor — static polling vs
// Metronome, single Rx queue.
//
// Backend-generic: --backend=heap|ladder|wheel|both|all selects the event-queue
// backend(s) the stack runs on (default heap; results are bit-identical
// across backends, only the simulation speed differs). Both apps' rate x
// driver matrices run through scenario::SweepRunner on --jobs workers.
#include "common.hpp"

using namespace metro;
using scenario::Shard;

namespace {

struct App {
  const char* title;
  sim::Time per_packet_cost;
  std::vector<double> rates;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, bench::BackendChoice::kHeap,
                                      bench::default_jobs());
  const auto w = bench::windows(args.fast);
  const auto backends = bench::backend_kinds(args.backend);

  bench::header("Figure 16 - IPsec gateway and FloWatcher CPU usage",
                "IPsec: both reach the same 5.61 Mpps max (one Metronome thread never "
                "releases the lock there -> ~100% CPU); Metronome wins as rate drops. "
                "FloWatcher: ~50% CPU gain at line rate, ~5x at 0.5 Mpps");

  const std::vector<App> apps_under_test = {
      {"IPsec Security Gateway (AES-CBC 128 ESP tunnel)", sim::calib::kIpsecPerPacketCost,
       {5.61, 3.0, 1.0, 0.5, 0.1}},
      {"FloWatcher-DPDK (run-to-completion flow monitor)",
       sim::calib::kFlowatcherPerPacketCost, {14.88, 10.0, 5.0, 1.0, 0.5}}};

  // The shard label carries the app title; rate and driver are read back
  // from each shard's config at print time, so rows cannot mispair with
  // results however the loops above them change.
  std::vector<Shard> shards;
  for (const auto backend : backends) {
    for (const auto& app : apps_under_test) {
      for (const double mpps : app.rates) {
        for (const bool metronome : {false, true}) {
          apps::ExperimentConfig cfg;
          cfg.driver =
              metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
          cfg.met.per_packet_cost = app.per_packet_cost;
          cfg.polling.per_packet_cost = app.per_packet_cost;
          cfg.n_cores = 3;
          cfg.workload.rate_mpps = mpps;
          cfg.warmup = w.warmup;
          cfg.measure = w.measure;
          shards.push_back(Shard{app.title, backend, cfg});
        }
      }
    }
  }
  const auto results = scenario::SweepRunner(args.jobs).run(shards);

  // Print in shard order, flushing a table whenever the app (shard label)
  // or backend changes.
  const auto table_header = [] {
    return stats::Table({"rate (Mpps)", "driver", "CPU (%)", "throughput (Mpps)"});
  };
  stats::Table table = table_header();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Shard& s = shards[i];
    if (i == 0 || s.backend != shards[i - 1].backend) {
      if (backends.size() > 1) {
        std::cout << "--- backend: " << scenario::backend_name(s.backend) << " ---\n\n";
      }
    }
    if (i == 0 || s.scenario != shards[i - 1].scenario ||
        s.backend != shards[i - 1].backend) {
      std::cout << s.scenario << "\n";
    }
    const bool metronome = s.config.driver == apps::DriverKind::kMetronome;
    const auto& r = results[i].result;
    table.add_row({bench::num(s.config.workload.rate_mpps, 2),
                   metronome ? "Metronome" : "static DPDK", bench::num(r.cpu_percent, 1),
                   bench::num(r.throughput_mpps, 2)});
    const bool last = i + 1 == shards.size();
    if (last || shards[i + 1].scenario != s.scenario ||
        shards[i + 1].backend != s.backend) {
      table.print();
      std::cout << "\n";
      table = table_header();
    }
  }
  return 0;
}
