// Figure 5: latency and CPU usage vs target vacation period
// (V-bar in {2, 5, 7, 10} us) at 10 and 5 Gbps.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figure 5 - latency vs CPU trade-off across target vacation times",
                "shorter V-bar -> lower latency but proportionally higher CPU; "
                "the trade-off holds at both 10 and 5 Gbps");

  stats::Table table({"rate (Gbps)", "V-bar (us)", "mean latency (us)", "p95 (us)", "CPU (%)"});
  for (const double gbps : {10.0, 5.0}) {
    for (const double target : {2.0, 5.0, 7.0, 10.0}) {
      apps::ExperimentConfig cfg;
      cfg.driver = apps::DriverKind::kMetronome;
      cfg.met.target_vacation = sim::from_micros(target);
      cfg.workload.rate_mpps = 14.88 * gbps / 10.0;
      cfg.warmup = w.warmup;
      cfg.measure = w.measure;
      const auto r = apps::run_experiment(cfg);
      table.add_row({bench::num(gbps, 0), bench::num(target, 0), bench::num(r.latency_us.mean),
                     bench::num(r.latency_us.whisker_hi), bench::num(r.cpu_percent, 1)});
    }
  }
  table.print();
  return 0;
}
