// Figure 11: package power vs CPU utilization for the ondemand and
// performance governors, static DPDK vs Metronome, at 10/1/0 Gbps.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figure 11 - power vs CPU under both governors",
                "Metronome beats static DPDK on power everywhere except ~line rate "
                "under `performance`; largest gain (~27%) at zero traffic with "
                "`ondemand`; Metronome's CPU% is higher under ondemand (slower cores)");

  stats::Table table({"governor", "rate (Gbps)", "driver", "CPU (%)", "power (W)"});
  for (const auto governor : {sim::Governor::kOndemand, sim::Governor::kPerformance}) {
    for (const double gbps : {10.0, 1.0, 0.0}) {
      for (const bool metronome : {false, true}) {
        apps::ExperimentConfig cfg;
        cfg.driver =
            metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
        cfg.governor = governor;
        cfg.n_cores = 3;
        cfg.workload.rate_mpps = 14.88 * gbps / 10.0;
        cfg.warmup = w.warmup;
        cfg.measure = w.measure;
        const auto r = apps::run_experiment(cfg);
        table.add_row({governor == sim::Governor::kOndemand ? "ondemand" : "performance",
                       bench::num(gbps, 0), metronome ? "Metronome" : "static DPDK",
                       bench::num(r.cpu_percent, 1), bench::num(r.package_watts, 2)});
      }
    }
  }
  table.print();
  return 0;
}
