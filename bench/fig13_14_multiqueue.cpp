// Figures 13 + 14: multi-queue (Intel XL710, 37 Mpps) — CPU and power vs
// the number of Metronome threads, for 2/3/4 Rx queues under both
// governors, plus busy tries and rho (Fig. 14). Static DPDK (one polling
// core per queue) is the reference line.
//
// The full app stack is generic over the event-queue backend, so the bench
// takes --backend=heap|ladder|both (default both). With both enabled every
// configuration runs on each backend and the bench *fails* (exit 1) if any
// run's packet counters diverge — the two backends must produce the same
// execution, only at different simulation speed. Per-configuration wall
// time is reported so the ladder's full-stack advantage is visible here
// too (the tracked number lives in BENCH_kernel.json's fig13_fullstack).
#include <map>

#include "common.hpp"

using namespace metro;
using bench::RunCounters;

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const auto choice = bench::backend_choice(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figures 13+14 - multiqueue CPU/power and busy-tries/rho",
                "with 2 queues per-queue load is high (rho ~0.7): gains are mostly "
                "CPU. More queues -> lower per-queue rho, fewer busy tries, larger "
                "CPU and power gains. ondemand trades extra CPU time for power");

  // configuration key -> counters per backend, for the divergence check.
  std::map<std::string, std::vector<std::pair<std::string, RunCounters>>> fingerprints;
  std::map<std::string, double> wall_by_backend;

  bench::for_each_backend(choice, [&](auto tag, const std::string& backend) {
    using Sim = typename decltype(tag)::type;
    std::cout << "--- backend: " << backend << " ---\n\n";

    for (const auto governor : {sim::Governor::kPerformance, sim::Governor::kOndemand}) {
      const char* gov_name = governor == sim::Governor::kPerformance ? "performance" : "ondemand";
      for (const int queues : {2, 3, 4}) {
        // Static DPDK reference: one full core per queue.
        apps::ExperimentConfig ref;
        ref.driver = apps::DriverKind::kStaticPolling;
        ref.xl710 = true;
        ref.n_queues = queues;
        ref.n_cores = queues;
        ref.governor = governor;
        ref.workload.rate_mpps = 37.0;
        ref.workload.n_flows = 4096;
        ref.warmup = w.warmup;
        ref.measure = w.measure;
        const auto rout = bench::run_counted<Sim>(ref);
        const std::string ref_key =
            std::string("static/") + gov_name + "/" + std::to_string(queues) + "q";
        fingerprints[ref_key].emplace_back(backend, rout.counters);
        wall_by_backend[backend] += rout.wall_seconds;

        std::cout << gov_name << ", " << queues << " queues — static DPDK reference: CPU "
                  << bench::num(rout.result.cpu_percent, 0) << "%, power "
                  << bench::num(rout.result.package_watts, 1) << " W, throughput "
                  << bench::num(rout.result.throughput_mpps, 1) << " Mpps\n";

        stats::Table table({"M (cores)", "CPU (%)", "power (W)", "busy tries (%)", "rho",
                            "throughput (Mpps)"});
        for (int m = queues; m <= 8; ++m) {
          apps::ExperimentConfig cfg;
          cfg.driver = apps::DriverKind::kMetronome;
          cfg.xl710 = true;
          cfg.n_queues = queues;
          cfg.n_cores = m;
          cfg.governor = governor;
          cfg.met.n_threads = m;
          cfg.met.target_vacation = 15 * sim::kMicrosecond;
          cfg.workload.rate_mpps = 37.0;
          cfg.workload.n_flows = 4096;
          cfg.warmup = w.warmup;
          cfg.measure = w.measure;
          const auto out = bench::run_counted<Sim>(cfg);
          const std::string key = std::string("metronome/") + gov_name + "/" +
                                  std::to_string(queues) + "q/m" + std::to_string(m);
          fingerprints[key].emplace_back(backend, out.counters);
          wall_by_backend[backend] += out.wall_seconds;
          const auto& r = out.result;
          table.add_row({bench::num(m, 0), bench::num(r.cpu_percent, 1),
                         bench::num(r.package_watts, 2), bench::num(r.busy_tries_pct, 1),
                         bench::num(r.rho, 3), bench::num(r.throughput_mpps, 1)});
        }
        table.print();
        std::cout << "\n";
      }
    }
  });

  for (const auto& [backend, wall] : wall_by_backend) {
    std::cout << "total simulation wall time, " << backend << ": " << bench::num(wall, 2)
              << " s\n";
  }

  // Cross-backend identity: every configuration must have produced the
  // exact same packet counters on every backend that ran it.
  bool diverged = false;
  for (const auto& [key, runs] : fingerprints) {
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (!(runs[i].second == runs[0].second)) {
        diverged = true;
        std::cerr << "BACKEND DIVERGENCE at " << key << ": " << runs[0].first << " (rx "
                  << runs[0].second.rx << ", tx " << runs[0].second.tx << ", drop "
                  << runs[0].second.dropped << ") vs " << runs[i].first << " (rx "
                  << runs[i].second.rx << ", tx " << runs[i].second.tx << ", drop "
                  << runs[i].second.dropped << ")\n";
      }
    }
  }
  if (diverged) {
    std::cerr << "\nFAIL: event-queue backends must produce bit-identical executions\n";
    return 1;
  }
  if (bench::use_heap(choice) && bench::use_ladder(choice)) {
    std::cout << "cross-backend check: all " << fingerprints.size()
              << " configurations produced identical rx/tx/drop counters on both backends\n";
  }
  return 0;
}
