// Figures 13 + 14: multi-queue (Intel XL710, 37 Mpps) — CPU and power vs
// the number of Metronome threads, for 2/3/4 Rx queues under both
// governors, plus busy tries and rho (Fig. 14). Static DPDK (one polling
// core per queue) is the reference line.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figures 13+14 - multiqueue CPU/power and busy-tries/rho",
                "with 2 queues per-queue load is high (rho ~0.7): gains are mostly "
                "CPU. More queues -> lower per-queue rho, fewer busy tries, larger "
                "CPU and power gains. ondemand trades extra CPU time for power");

  for (const auto governor : {sim::Governor::kPerformance, sim::Governor::kOndemand}) {
    const char* gov_name = governor == sim::Governor::kPerformance ? "performance" : "ondemand";
    for (const int queues : {2, 3, 4}) {
      // Static DPDK reference: one full core per queue.
      apps::ExperimentConfig ref;
      ref.driver = apps::DriverKind::kStaticPolling;
      ref.xl710 = true;
      ref.n_queues = queues;
      ref.n_cores = queues;
      ref.governor = governor;
      ref.workload.rate_mpps = 37.0;
      ref.workload.n_flows = 4096;
      ref.warmup = w.warmup;
      ref.measure = w.measure;
      const auto rstat = apps::run_experiment(ref);

      std::cout << gov_name << ", " << queues << " queues — static DPDK reference: CPU "
                << bench::num(rstat.cpu_percent, 0) << "%, power "
                << bench::num(rstat.package_watts, 1) << " W, throughput "
                << bench::num(rstat.throughput_mpps, 1) << " Mpps\n";

      stats::Table table({"M (cores)", "CPU (%)", "power (W)", "busy tries (%)", "rho",
                          "throughput (Mpps)"});
      for (int m = queues; m <= 8; ++m) {
        apps::ExperimentConfig cfg;
        cfg.driver = apps::DriverKind::kMetronome;
        cfg.xl710 = true;
        cfg.n_queues = queues;
        cfg.n_cores = m;
        cfg.governor = governor;
        cfg.met.n_threads = m;
        cfg.met.target_vacation = 15 * sim::kMicrosecond;
        cfg.workload.rate_mpps = 37.0;
        cfg.workload.n_flows = 4096;
        cfg.warmup = w.warmup;
        cfg.measure = w.measure;
        const auto r = apps::run_experiment(cfg);
        table.add_row({bench::num(m, 0), bench::num(r.cpu_percent, 1),
                       bench::num(r.package_watts, 2), bench::num(r.busy_tries_pct, 1),
                       bench::num(r.rho, 3), bench::num(r.throughput_mpps, 1)});
      }
      table.print();
      std::cout << "\n";
    }
  }
  return 0;
}
