// Figures 13 + 14: multi-queue (Intel XL710, 37 Mpps) — CPU and power vs
// the number of Metronome threads, for 2/3/4 Rx queues under both
// governors, plus busy tries and rho (Fig. 14). Static DPDK (one polling
// core per queue) is the reference line.
//
// The full app stack is generic over the event-queue backend, so the bench
// takes --backend=heap|ladder|wheel|both|all (default all). With more than
// one backend enabled every
// configuration runs on each backend and the bench *fails* (exit 1) if any
// run's telemetry fingerprint diverges — every registered counter and
// latency-histogram bin across every layer — because the two backends must
// produce the same execution, only at different simulation speed (the
// tracked wall number lives in BENCH_kernel.json's fig13_fullstack).
//
// The whole configuration matrix is expanded up front and executed by
// scenario::SweepRunner on --jobs worker threads (default: half the
// hardware threads) — results are bit-identical for any job count, so the
// tables below don't depend on the parallelism, only the wall time does.
#include <map>

#include "common.hpp"

using namespace metro;
using scenario::BackendKind;
using scenario::Shard;
using scenario::ShardResult;

namespace {

// Upper bound of the Metronome thread-count sweep (M = queues..kMaxCores);
// the print loop flushes each configuration's table at its kMaxCores row.
constexpr int kMaxCores = 8;

apps::ExperimentConfig static_ref_config(sim::Governor governor, int queues,
                                         const bench::Windows& w) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kStaticPolling;
  cfg.xl710 = true;
  cfg.n_queues = queues;
  cfg.n_cores = queues;
  cfg.governor = governor;
  cfg.workload.rate_mpps = 37.0;
  cfg.workload.n_flows = 4096;
  cfg.warmup = w.warmup;
  cfg.measure = w.measure;
  return cfg;
}

apps::ExperimentConfig metronome_config(sim::Governor governor, int queues, int m,
                                        const bench::Windows& w) {
  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = queues;
  cfg.n_cores = m;
  cfg.governor = governor;
  cfg.met.n_threads = m;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 37.0;
  cfg.workload.n_flows = 4096;
  cfg.warmup = w.warmup;
  cfg.measure = w.measure;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, bench::BackendChoice::kAll,
                                      bench::default_jobs());
  const auto w = bench::windows(args.fast);
  const auto backends = bench::backend_kinds(args.backend);

  bench::header("Figures 13+14 - multiqueue CPU/power and busy-tries/rho",
                "with 2 queues per-queue load is high (rho ~0.7): gains are mostly "
                "CPU. More queues -> lower per-queue rho, fewer busy tries, larger "
                "CPU and power gains. ondemand trades extra CPU time for power");

  // Expand the whole matrix up front; shard order is the print order.
  const sim::Time series_interval =
      args.series_us > 0.0 ? sim::from_micros(args.series_us) : 0;
  std::vector<Shard> shards;
  for (const BackendKind backend : backends) {
    for (const auto governor : {sim::Governor::kPerformance, sim::Governor::kOndemand}) {
      const char* gov_name =
          governor == sim::Governor::kPerformance ? "performance" : "ondemand";
      for (const int queues : {2, 3, 4}) {
        const std::string base = std::string(gov_name) + "/" + std::to_string(queues) + "q";
        Shard ref{"static/" + base, backend, static_ref_config(governor, queues, w)};
        ref.config.series_interval = series_interval;
        shards.push_back(std::move(ref));
        for (int m = queues; m <= kMaxCores; ++m) {
          Shard met{"metronome/" + base + "/m" + std::to_string(m), backend,
                    metronome_config(governor, queues, m, w)};
          met.config.series_interval = series_interval;
          shards.push_back(std::move(met));
        }
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  scenario::SweepRunner runner(args.jobs);
  // Sweep traces trade depth for breadth: with >100 shards each exporting
  // a lane, a small per-shard ring keeps the Chrome JSON loadable and the
  // post-run export off the wall-time budget (capped events drop at
  // capacity, counted per lane). Single-lane benches (fig9) keep a deep
  // ring instead.
  if (!args.trace_out.empty()) runner.set_tracing(1u << 10);
  const auto results = runner.run(shards);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Print in shard order: static reference line, then the M table.
  std::map<std::string, double> wall_by_backend;
  stats::Table table({"M (cores)", "CPU (%)", "power (W)", "busy tries (%)", "rho",
                      "throughput (Mpps)"});
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Shard& s = shards[i];
    const apps::ExperimentResult& r = results[i].result;
    wall_by_backend[scenario::backend_name(s.backend)] += results[i].wall_seconds;
    if (s.config.driver == apps::DriverKind::kStaticPolling) {
      if (s.config.n_queues == 2 && s.config.governor == sim::Governor::kPerformance) {
        std::cout << "--- backend: " << scenario::backend_name(s.backend) << " ---\n\n";
      }
      const char* gov_name =
          s.config.governor == sim::Governor::kPerformance ? "performance" : "ondemand";
      std::cout << gov_name << ", " << s.config.n_queues
                << " queues — static DPDK reference: CPU " << bench::num(r.cpu_percent, 0)
                << "%, power " << bench::num(r.package_watts, 1) << " W, throughput "
                << bench::num(r.throughput_mpps, 1) << " Mpps\n";
      continue;
    }
    table.add_row({bench::num(s.config.n_cores, 0), bench::num(r.cpu_percent, 1),
                   bench::num(r.package_watts, 2), bench::num(r.busy_tries_pct, 1),
                   bench::num(r.rho, 3), bench::num(r.throughput_mpps, 1)});
    if (s.config.n_cores == kMaxCores) {  // last row of this configuration's table
      table.print();
      std::cout << "\n";
      table = stats::Table({"M (cores)", "CPU (%)", "power (W)", "busy tries (%)", "rho",
                            "throughput (Mpps)"});
    }
  }

  for (const auto& [backend, wall] : wall_by_backend) {
    std::cout << "total simulation wall time, " << backend << ": " << bench::num(wall, 2)
              << " s (CPU-seconds across shards)\n";
  }
  std::cout << "elapsed: " << bench::num(elapsed, 2) << " s on " << args.jobs << " job(s)\n";

  // Cross-backend identity: every configuration must have produced the
  // exact same packet counters and latency distribution on every backend.
  std::map<std::string, std::vector<std::size_t>> by_key;
  for (std::size_t i = 0; i < shards.size(); ++i) by_key[shards[i].scenario].push_back(i);
  bool diverged = false;
  for (const auto& [key, idx] : by_key) {
    for (std::size_t j = 1; j < idx.size(); ++j) {
      const ShardResult& a = results[idx[0]];
      const ShardResult& b = results[idx[j]];
      // Full telemetry identity: one fingerprint covers every counter,
      // per-queue statistic and latency-histogram bin of the run.
      if (a.fingerprint != b.fingerprint) {
        diverged = true;
        std::cerr << "BACKEND DIVERGENCE at " << key << ": "
                  << scenario::backend_name(shards[idx[0]].backend) << " (rx "
                  << a.counters.rx << ", tx " << a.counters.tx << ", drop "
                  << a.counters.dropped << ", fingerprint " << a.fingerprint << ") vs "
                  << scenario::backend_name(shards[idx[j]].backend) << " (rx "
                  << b.counters.rx << ", tx " << b.counters.tx << ", drop "
                  << b.counters.dropped << ", fingerprint " << b.fingerprint << ")\n";
      }
    }
  }
  if (diverged) {
    std::cerr << "\nFAIL: event-queue backends must produce bit-identical executions\n";
    return 1;
  }
  if (backends.size() > 1) {
    std::cout << "cross-backend check: all " << by_key.size()
              << " configurations produced identical telemetry fingerprints on "
              << backends.size() << " backends\n";
  }
  if (!args.trace_out.empty()) bench::write_sweep_trace(args.trace_out, shards, results, runner);
  return 0;
}
