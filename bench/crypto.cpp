// Crypto substrate microbenchmark: the fast path (T-table AES with an
// AES-NI dispatch where the CPU has it, midstate HMAC-SHA1, burst ESP)
// against the scalar oracles it replaced. AES rows report three columns:
// the scalar oracle, the portable T-table path (Impl::kTables pinned), and
// the auto-dispatched path the ESP data path actually runs (AES-NI when
// available, else identical to the T-table column).
//
// Sections:
//   * AES-128 single block encrypt/decrypt (chained, so each block depends
//     on the last — no ILP flattery),
//   * AES-CBC-128 by payload size (encrypt serial per CBC's chain;
//     decrypt takes the 4-wide pipelined path),
//   * SHA-1 throughput and HMAC-SHA1-96 tag rate by message length
//     (midstate vs pad-rehashing baseline),
//   * full ESP encap+decap packets/s, single-call and burst-of-32.
//
// Every number is a median over repeated trials with the IQR alongside
// (untimed warm-up first); the report lands in BENCH_crypto.json through
// stats::JsonWriter. The CI regression gate is
// scripts/check_bench_regression.py comparing this report against the
// tracked BENCH_crypto.json baseline (median +/- IQR tolerances) — the
// speedups are gated against what the baseline actually recorded, not a
// hardcoded constant. --min-cbc-speedup=X remains as a self-contained
// manual gate: it turns the in-run AES-CBC-1024B encrypt speedup into a
// hard floor (below X the bench exits 1), comparing medians so run-to-run
// jitter has to move the *median* trial to flip it.
//
// Flags (strict parsing, unknown flag exits 2):
//   --fast                  fewer trials/iterations (CI smoke mode)
//   --min-cbc-speedup=X     fail (exit 1) if fast CBC encrypt < X * scalar
//                           (manual floor; CI uses the regression script)
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "crypto_common.hpp"
#include "stats/json_writer.hpp"
#include "stats/table.hpp"

using namespace metro;
using bench::cryptob::Sample;
using bench::cryptob::speedup;

namespace {

struct CryptoArgs {
  bool fast = false;
  double min_cbc_speedup = 0.0;  // 0 = no gate
};

bool try_parse(int argc, char** argv, CryptoArgs& out, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      out.fast = true;
    } else if (arg.rfind("--min-cbc-speedup=", 0) == 0) {
      const std::string v = arg.substr(18);
      char* end = nullptr;
      const double x = std::strtod(v.c_str(), &end);
      if (v.empty() || *end != '\0' || !(x > 0.0)) {
        error = "bad --min-cbc-speedup value '" + v + "' (want > 0)";
        return false;
      }
      out.min_cbc_speedup = x;
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

using bench::cryptob::cbc_loop;
using bench::cryptob::gateway_loop;
using bench::cryptob::hmac_loop;
using bench::cryptob::kBenchIv;
using bench::cryptob::kBenchKey;

/// Chained single-block loop: feed each output back as the next input so
/// consecutive blocks serialise (measures latency, not throughput).
template <typename Cipher, bool kDecrypt>
std::uint8_t block_loop(const Cipher& c, std::uint64_t iters) {
  std::uint8_t buf[16];
  std::memcpy(buf, kBenchIv.data(), 16);
  for (std::uint64_t i = 0; i < iters; ++i) {
    if constexpr (kDecrypt) {
      c.decrypt_block(buf, buf);
    } else {
      c.encrypt_block(buf, buf);
    }
  }
  return buf[0];
}

/// Burst-of-32 encap+decap; iters counts packets, rounded up to bursts.
template <typename Gateway>
std::uint8_t gateway_burst_loop(Gateway& egress, Gateway& ingress,
                                const std::vector<std::uint8_t>& inner, std::uint64_t iters) {
  constexpr std::size_t kBurst = 32;
  std::vector<net::Packet> pkts(kBurst);
  std::uint8_t csum = 0;
  for (std::uint64_t done = 0; done < iters; done += kBurst) {
    for (auto& p : pkts) p.assign(inner.data(), inner.size());
    egress.encap_burst(pkts);
    ingress.decap_burst(pkts);
    csum = static_cast<std::uint8_t>(csum ^ pkts[0].data()[0]);
  }
  return csum;
}

}  // namespace

int main(int argc, char** argv) {
  CryptoArgs args;
  std::string error;
  if (!try_parse(argc, argv, args, error)) {
    std::cerr << error << "\nflags:\n  --fast\n  --min-cbc-speedup=X\n";
    return 2;
  }

  const int trials = args.fast ? 5 : 9;
  const std::uint64_t scale = args.fast ? 1 : 4;

  std::cout << "=== Crypto substrate microbench (fast vs scalar oracle) ===\n";
  std::cout << "trials=" << trials << " per row; medians with IQR; speedup = scalar/fast\n\n";

  const std::span<const std::uint8_t, 16> key(kBenchKey);
  const crypto::Aes128 fast_aes(key);
  const crypto::Aes128 tbl_aes(key, crypto::Aes128::Impl::kTables);
  const crypto::ScalarAes128 scalar_aes(key);
  const crypto::AesCbc fast_cbc(key);
  const crypto::AesCbc tbl_cbc(key, crypto::Aes128::Impl::kTables);
  const crypto::ScalarAesCbc scalar_cbc(key);
  const char* aes_impl = fast_aes.uses_hardware() ? "aesni" : "ttable";
  std::cout << "auto-dispatched AES implementation: " << aes_impl << "\n\n";

  // --- AES single block ----------------------------------------------------
  const std::uint64_t block_iters = 100'000 * scale;
  const Sample enc_fast = bench::cryptob::time_ns_per_op(
      trials, block_iters, [&](std::uint64_t n) { return block_loop<crypto::Aes128, false>(fast_aes, n); });
  const Sample enc_tbl = bench::cryptob::time_ns_per_op(
      trials, block_iters, [&](std::uint64_t n) { return block_loop<crypto::Aes128, false>(tbl_aes, n); });
  const Sample enc_scalar = bench::cryptob::time_ns_per_op(
      trials, block_iters,
      [&](std::uint64_t n) { return block_loop<crypto::ScalarAes128, false>(scalar_aes, n); });
  const Sample dec_fast = bench::cryptob::time_ns_per_op(
      trials, block_iters, [&](std::uint64_t n) { return block_loop<crypto::Aes128, true>(fast_aes, n); });
  const Sample dec_tbl = bench::cryptob::time_ns_per_op(
      trials, block_iters, [&](std::uint64_t n) { return block_loop<crypto::Aes128, true>(tbl_aes, n); });
  const Sample dec_scalar = bench::cryptob::time_ns_per_op(
      trials, block_iters,
      [&](std::uint64_t n) { return block_loop<crypto::ScalarAes128, true>(scalar_aes, n); });

  stats::Table blk({"op", "scalar (ns/blk)", "ttable (ns/blk)", "auto (ns/blk)", "speedup"});
  blk.add_row({"encrypt_block", stats::Table::num(enc_scalar.median, 1),
               stats::Table::num(enc_tbl.median, 1), stats::Table::num(enc_fast.median, 1),
               stats::Table::num(speedup(enc_scalar, enc_fast), 2)});
  blk.add_row({"decrypt_block", stats::Table::num(dec_scalar.median, 1),
               stats::Table::num(dec_tbl.median, 1), stats::Table::num(dec_fast.median, 1),
               stats::Table::num(speedup(dec_scalar, dec_fast), 2)});
  blk.print();
  std::cout << "\n";

  // --- AES-CBC by payload --------------------------------------------------
  struct CbcRow {
    std::size_t bytes;
    Sample enc_scalar, enc_tbl, enc_fast, dec_scalar, dec_tbl, dec_fast;
  };
  std::vector<CbcRow> cbc_rows;
  for (const std::size_t bytes : {64u, 256u, 1024u, 1472u}) {
    std::vector<std::uint8_t> buf(bytes);
    for (std::size_t i = 0; i < bytes; ++i) buf[i] = static_cast<std::uint8_t>(i);
    const std::uint64_t iters = (2'000'000 / bytes + 1) * scale;
    CbcRow row;
    row.bytes = bytes;
    row.enc_scalar = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return cbc_loop<crypto::ScalarAesCbc, false>(scalar_cbc, buf, n); });
    row.enc_tbl = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return cbc_loop<crypto::AesCbc, false>(tbl_cbc, buf, n); });
    row.enc_fast = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return cbc_loop<crypto::AesCbc, false>(fast_cbc, buf, n); });
    row.dec_scalar = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return cbc_loop<crypto::ScalarAesCbc, true>(scalar_cbc, buf, n); });
    row.dec_tbl = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return cbc_loop<crypto::AesCbc, true>(tbl_cbc, buf, n); });
    row.dec_fast = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return cbc_loop<crypto::AesCbc, true>(fast_cbc, buf, n); });
    cbc_rows.push_back(row);
  }
  stats::Table cbc({"payload (B)", "enc scalar (ns)", "enc ttable (ns)", "enc auto (ns)",
                    "enc speedup", "dec scalar (ns)", "dec ttable (ns)", "dec auto (ns)",
                    "dec speedup"});
  for (const auto& r : cbc_rows) {
    cbc.add_row({std::to_string(r.bytes), stats::Table::num(r.enc_scalar.median, 0),
                 stats::Table::num(r.enc_tbl.median, 0), stats::Table::num(r.enc_fast.median, 0),
                 stats::Table::num(speedup(r.enc_scalar, r.enc_fast), 2),
                 stats::Table::num(r.dec_scalar.median, 0),
                 stats::Table::num(r.dec_tbl.median, 0), stats::Table::num(r.dec_fast.median, 0),
                 stats::Table::num(speedup(r.dec_scalar, r.dec_fast), 2)});
  }
  cbc.print();
  std::cout << "\n";

  // --- SHA-1 / HMAC-SHA1-96 ------------------------------------------------
  const std::vector<std::uint8_t> auth_key(20, 0xa5);
  const crypto::HmacSha1 fast_hmac(auth_key);
  const crypto::ScalarHmacSha1 scalar_hmac(auth_key);
  struct HmacRow {
    std::size_t bytes;
    Sample scalar, fast;
  };
  std::vector<HmacRow> hmac_rows;
  for (const std::size_t bytes : {16u, 64u, 256u, 1472u}) {
    std::vector<std::uint8_t> msg(bytes, 0x5a);
    const std::uint64_t iters = (1'000'000 / (bytes + 64) + 1) * scale;
    HmacRow row;
    row.bytes = bytes;
    row.scalar = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return hmac_loop(scalar_hmac, msg, n); });
    row.fast = bench::cryptob::time_ns_per_op(
        trials, iters, [&](std::uint64_t n) { return hmac_loop(fast_hmac, msg, n); });
    hmac_rows.push_back(row);
  }
  stats::Table hm({"msg (B)", "scalar (ns/tag)", "fast (ns/tag)", "speedup"});
  for (const auto& r : hmac_rows) {
    hm.add_row({std::to_string(r.bytes), stats::Table::num(r.scalar.median, 0),
                stats::Table::num(r.fast.median, 0),
                stats::Table::num(speedup(r.scalar, r.fast), 2)});
  }
  hm.print();
  std::cout << "\n";

  // --- full ESP encap+decap ------------------------------------------------
  const auto sa = bench::cryptob::bench_sa();
  net::Packet tmpl;
  net::build_udp_packet(tmpl, {net::ipv4_addr(192, 168, 1, 5), net::ipv4_addr(192, 168, 2, 9),
                               5555, 6666, net::kIpProtoUdp});
  const std::vector<std::uint8_t> inner(tmpl.data(), tmpl.data() + tmpl.size());
  apps::IpsecGateway fast_eg(sa), fast_in(sa);
  apps::ScalarIpsecGateway scalar_eg(sa), scalar_in(sa);
  apps::IpsecGateway burst_eg(sa), burst_in(sa);
  const std::uint64_t pkt_iters = 20'000 * scale;
  const Sample gw_scalar = bench::cryptob::time_ns_per_op(
      trials, pkt_iters, [&](std::uint64_t n) { return gateway_loop(scalar_eg, scalar_in, inner, n); });
  const Sample gw_fast = bench::cryptob::time_ns_per_op(
      trials, pkt_iters, [&](std::uint64_t n) { return gateway_loop(fast_eg, fast_in, inner, n); });
  const Sample gw_burst = bench::cryptob::time_ns_per_op(
      trials, pkt_iters, [&](std::uint64_t n) { return gateway_burst_loop(burst_eg, burst_in, inner, n); });

  stats::Table gw({"path", "ns/pkt", "pkt/s", "speedup vs scalar"});
  const auto pps = [](const Sample& s) { return s.median > 0 ? 1e9 / s.median : 0.0; };
  gw.add_row({"scalar encap+decap", stats::Table::num(gw_scalar.median, 0),
              stats::Table::num(pps(gw_scalar), 0), "1.00"});
  gw.add_row({"fast encap+decap", stats::Table::num(gw_fast.median, 0),
              stats::Table::num(pps(gw_fast), 0),
              stats::Table::num(speedup(gw_scalar, gw_fast), 2)});
  gw.add_row({"fast burst(32)", stats::Table::num(gw_burst.median, 0),
              stats::Table::num(pps(gw_burst), 0),
              stats::Table::num(speedup(gw_scalar, gw_burst), 2)});
  gw.print();
  std::cout << "\n";

  // --- JSON report ---------------------------------------------------------
  const auto emit_pair = [](stats::JsonWriter& w, const char* name, const Sample& scalar,
                            const Sample& fast) {
    w.key(name).begin_object();
    w.kv("scalar_ns_median", scalar.median);
    w.kv("scalar_ns_iqr", scalar.iqr);
    w.kv("fast_ns_median", fast.median);
    w.kv("fast_ns_iqr", fast.iqr);
    w.kv("speedup_median", speedup(scalar, fast));
    w.end_object();
  };
  std::ofstream json_file("BENCH_crypto.json");
  stats::JsonWriter w(json_file);
  w.begin_object();
  w.kv("bench", "crypto");
  w.kv("mode", args.fast ? "fast" : "full");
  w.kv("trials", static_cast<std::uint64_t>(trials));
  w.kv("aes_impl", aes_impl);
  emit_pair(w, "aes_block_encrypt", enc_scalar, enc_fast);
  emit_pair(w, "aes_block_decrypt", dec_scalar, dec_fast);
  w.key("aes_cbc").begin_array();
  for (const auto& r : cbc_rows) {
    w.begin_object();
    w.kv("payload_bytes", static_cast<std::uint64_t>(r.bytes));
    w.kv("encrypt_scalar_ns_median", r.enc_scalar.median);
    w.kv("encrypt_ttable_ns_median", r.enc_tbl.median);
    w.kv("encrypt_fast_ns_median", r.enc_fast.median);
    w.kv("encrypt_speedup_median", speedup(r.enc_scalar, r.enc_fast));
    w.kv("decrypt_scalar_ns_median", r.dec_scalar.median);
    w.kv("decrypt_ttable_ns_median", r.dec_tbl.median);
    w.kv("decrypt_fast_ns_median", r.dec_fast.median);
    w.kv("decrypt_speedup_median", speedup(r.dec_scalar, r.dec_fast));
    w.end_object();
  }
  w.end_array();
  w.key("hmac_sha1_96").begin_array();
  for (const auto& r : hmac_rows) {
    w.begin_object();
    w.kv("message_bytes", static_cast<std::uint64_t>(r.bytes));
    w.kv("scalar_ns_median", r.scalar.median);
    w.kv("scalar_ns_iqr", r.scalar.iqr);
    w.kv("fast_ns_median", r.fast.median);
    w.kv("fast_ns_iqr", r.fast.iqr);
    w.kv("speedup_median", speedup(r.scalar, r.fast));
    w.end_object();
  }
  w.end_array();
  w.key("esp_encap_decap").begin_object();
  w.kv("scalar_ns_median", gw_scalar.median);
  w.kv("fast_ns_median", gw_fast.median);
  w.kv("fast_burst32_ns_median", gw_burst.median);
  w.kv("scalar_pps_median", pps(gw_scalar));
  w.kv("fast_pps_median", pps(gw_fast));
  w.kv("fast_burst32_pps_median", pps(gw_burst));
  w.kv("speedup_median", speedup(gw_scalar, gw_fast));
  w.end_object();
  w.end_object();
  w.finish();
  std::cout << "wrote BENCH_crypto.json (sink=" << static_cast<int>(bench::cryptob::g_sink)
            << ")\n";

  // --- noise-aware CI gate -------------------------------------------------
  if (args.min_cbc_speedup > 0.0) {
    // Gate on the 1024 B encrypt row of the auto-dispatched path (what the
    // ESP data path runs): big enough that per-call overhead is noise, and
    // encrypt is CBC's serial direction — the harder one to speed up.
    double gate = 0.0;
    for (const auto& r : cbc_rows) {
      if (r.bytes == 1024) gate = speedup(r.enc_scalar, r.enc_fast);
    }
    if (gate < args.min_cbc_speedup) {
      std::cerr << "FAIL: AES-CBC-1024B encrypt speedup " << gate << " < required "
                << args.min_cbc_speedup << " (median of " << trials << " trials)\n";
      return 1;
    }
    std::cout << "CBC gate ok: 1024B encrypt speedup " << stats::Table::num(gate, 2)
              << " >= " << args.min_cbc_speedup << "\n";
  }
  return 0;
}
