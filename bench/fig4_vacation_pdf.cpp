// Figure 4: vacation-period PDF, analysis (eq. 9) vs experiment, with
// TS = TL = 50 us and M in {2, 3, 5}.
//
// With equal timeouts the high-load CDF (eq. 5) holds at any load, which is
// exactly why the paper uses this configuration to validate the
// decorrelation assumption. Two reproduction details:
//
//  * The model describes wake *phases* uniformly spread over the timeout
//    period. On the testbed, phases random-walk through OS jitter over the
//    minutes-long capture; in the (much shorter) simulated runs we realise
//    the same ensemble by aggregating many seeds, each contributing an
//    independent initial stagger. The capture runs without traffic so the
//    phases stay frozen at their stagger (under load, the thread that
//    drains the queue retards its next wake by the busy time — a pursuit
//    dynamic that phase-locks the threads within one run; the paper's
//    noisy minutes-long capture averages over it).
//  * Threads request 50 us but sleep 50 us + the service overhead
//    (~6.9 us at this magnitude, Fig. 1); the theory curve is evaluated at
//    that effective period, exactly as the paper's x-axis extends past the
//    nominal timeout.
#include "apps/experiment.hpp"
#include "common.hpp"
#include "core/model.hpp"
#include "util/seed_mix.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const int n_seeds = fast ? 10 : 60;
  const sim::Time run_per_seed = fast ? 100 * sim::kMillisecond : 400 * sim::kMillisecond;
  constexpr double kTimeout = 50.0;  // us, requested TS = TL

  bench::header("Figure 4 - vacation PDF: analysis vs experiment (TS = TL = 50 us)",
                "empirical density matches (M-1)/TL_eff (1 - x/TL_eff)^(M-2); rare "
                "wake-ups beyond TL become negligible by M = 3");

  for (const int m : {2, 3, 5}) {
    stats::Histogram hist(5.0, 200.0);
    double effective_timeout_sum = 0.0;
    std::uint64_t effective_count = 0;

    for (int seed = 0; seed < n_seeds; ++seed) {
      apps::ExperimentConfig cfg;
      cfg.driver = apps::DriverKind::kMetronome;
      cfg.seed = util::mix_seed(1000, static_cast<std::uint64_t>(seed));
      cfg.met.n_threads = m;
      cfg.n_cores = 3;
      cfg.met.adaptive = false;
      cfg.met.fixed_ts = sim::from_micros(kTimeout);
      cfg.met.long_timeout = sim::from_micros(kTimeout);
      cfg.workload.rate_mpps = 0.0;  // pure timer-phase statistics
      cfg.workload.seed = cfg.seed;
      cfg.warmup = 0;
      cfg.measure = run_per_seed;

      apps::Testbed bed(cfg);
      bed.start();
      bed.run_until(20 * sim::kMillisecond);
      bed.begin_measurement();  // clears the per-run summaries
      // Attach the (cross-seed) histogram only after warm-up so each seed
      // contributes exactly its steady-state samples.
      bed.metronome()->queue_state(0).vacation_hist = &hist;
      bed.run_until(20 * sim::kMillisecond + run_per_seed);

      // Effective period: mean measured cycle spacing * M (each thread's
      // wake period), dominated by requested + overhead.
      const auto& qs = bed.metronome()->queue_state(0);
      effective_timeout_sum += qs.vacation_us.mean() * m * static_cast<double>(qs.vacation_us.count());
      effective_count += qs.vacation_us.count();
    }

    const double tl_eff = effective_timeout_sum / static_cast<double>(effective_count);
    const auto density = hist.density();

    stats::Table table({"bin (us)", "measured density", "theory density (TL_eff)"});
    double l1 = 0.0;
    const std::size_t last_bin = static_cast<std::size_t>(tl_eff / 5.0) + 1;
    for (std::size_t b = 0; b <= last_bin && b < hist.n_bins(); ++b) {
      const double x = (static_cast<double>(b) + 0.5) * 5.0;
      double theory = core::model::vacation_pdf(x, tl_eff, tl_eff, m);
      table.add_row({bench::num(x, 1), bench::num(density[b], 4), bench::num(theory, 4)});
      l1 += std::abs(density[b] - theory) * 5.0;
    }

    std::uint64_t beyond_tl = hist.overflow();
    for (std::size_t b = 0; b < hist.n_bins(); ++b) {
      if (static_cast<double>(b) * hist.bin_width() > tl_eff) beyond_tl += hist.bin_count(b);
    }
    std::cout << "M = " << m << "  (samples: " << hist.count()
              << ", effective timeout: " << bench::num(tl_eff, 1)
              << " us, beyond-TL fraction: "
              << bench::num(100.0 * static_cast<double>(beyond_tl) /
                                static_cast<double>(hist.count() ? hist.count() : 1),
                            3)
              << "%)\n";
    table.print();
    std::cout << "L1 distance to theory: " << bench::num(l1, 4) << "\n\n";
  }
  return 0;
}
