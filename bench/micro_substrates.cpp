// Microbenchmarks of the substrates (google-benchmark).
//
// These are sanity anchors for the calibration constants: the functional
// implementations should be in the same order of magnitude as the per-
// packet costs charged inside the simulator (on this container's CPU, not
// the paper's Xeon Silver).
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/flowatcher.hpp"
#include "apps/ipsec.hpp"
#include "apps/l3fwd.hpp"
#include "crypto/aes.hpp"
#include "crypto/sha1.hpp"
#include "net/exact_match.hpp"
#include "net/lpm.hpp"
#include "nic/rss.hpp"
#include "rt/spsc_ring.hpp"
#include "rt/trylock.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"

using namespace metro;

namespace {

void BM_LpmLookup(benchmark::State& state) {
  net::LpmTable lpm;
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    lpm.add(static_cast<std::uint32_t>(rng.next_u64()), 8 + static_cast<int>(rng.uniform_u64(17)),
            static_cast<std::uint16_t>(i));
  }
  std::uint32_t probe = 0x0a000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpm.lookup(probe));
    probe = probe * 2654435761u + 1;
  }
}
BENCHMARK(BM_LpmLookup);

void BM_CuckooFind(benchmark::State& state) {
  struct H {
    std::uint64_t operator()(const net::FiveTuple& t) const { return net::flow_hash(t); }
  };
  net::CuckooTable<net::FiveTuple, std::uint32_t, H> table(4096);
  for (std::uint32_t i = 0; i < 3000; ++i) {
    table.insert(net::FiveTuple{i, ~i, 1, 2, 17}, i);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(net::FiveTuple{i % 3000, ~(i % 3000), 1, 2, 17}));
    ++i;
  }
}
BENCHMARK(BM_CuckooFind);

void BM_ToeplitzHash(benchmark::State& state) {
  std::uint32_t s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nic::rss_hash_ipv4(s, ~s, 1000, 2000));
    ++s;
  }
}
BENCHMARK(BM_ToeplitzHash);

void BM_AesCbcEncrypt(benchmark::State& state) {
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  crypto::AesCbc cbc{std::span<const std::uint8_t, 16>(key)};
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)), 0xab);
  const std::array<std::uint8_t, 16> iv{};
  for (auto _ : state) {
    cbc.encrypt(buf, std::span<const std::uint8_t, 16>(iv), buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(64)->Arg(1504);

void BM_HmacSha1(benchmark::State& state) {
  std::vector<std::uint8_t> key(20, 0x0b);
  crypto::HmacSha1 hmac(key);
  std::vector<std::uint8_t> msg(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac.compute96(msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha1)->Arg(64)->Arg(1504);

void BM_L3fwdProcess(benchmark::State& state) {
  apps::L3Forwarder fwd(apps::L3Forwarder::Mode::kLpm);
  fwd.add_port({0, {}, {}});
  fwd.add_route(net::ipv4_addr(10, 0, 0, 0), 8, 0);
  net::Packet pkt;
  const net::FiveTuple t{net::ipv4_addr(198, 18, 0, 1), net::ipv4_addr(10, 1, 2, 3), 1000, 2000,
                         net::kIpProtoUdp};
  for (auto _ : state) {
    state.PauseTiming();
    apps::build_udp_packet(pkt, t, 64, 64);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fwd.process(pkt));
  }
}
BENCHMARK(BM_L3fwdProcess);

void BM_IpsecEncapDecap(benchmark::State& state) {
  apps::SecurityAssociation sa;
  sa.tunnel_src = net::ipv4_addr(1, 1, 1, 1);
  sa.tunnel_dst = net::ipv4_addr(2, 2, 2, 2);
  apps::IpsecGateway egress(sa), ingress(sa);
  net::Packet pkt;
  const net::FiveTuple t{net::ipv4_addr(198, 18, 0, 1), net::ipv4_addr(10, 1, 2, 3), 1000, 2000,
                         net::kIpProtoUdp};
  for (auto _ : state) {
    state.PauseTiming();
    apps::build_udp_packet(pkt, t, 64, 64);
    state.ResumeTiming();
    benchmark::DoNotOptimize(egress.encap(pkt));
    benchmark::DoNotOptimize(ingress.decap(pkt));
  }
}
BENCHMARK(BM_IpsecEncapDecap);

void BM_FloWatcherObserve(benchmark::State& state) {
  apps::FloWatcher fw(1 << 14);
  std::uint32_t i = 0;
  for (auto _ : state) {
    fw.observe_flow(net::FiveTuple{i % 4096, 1, 2, 3, 17}, 64, static_cast<std::int64_t>(i));
    ++i;
  }
}
BENCHMARK(BM_FloWatcherObserve);

void BM_SpscRingPushPop(benchmark::State& state) {
  rt::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t buf[32];
  std::uint64_t v = 0;
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) ring.push(v++);
    benchmark::DoNotOptimize(ring.pop_burst(buf, 32));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SpscRingPushPop);

void BM_TryLockUncontended(benchmark::State& state) {
  rt::TryLock lock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.try_lock());
    lock.unlock();
  }
}
BENCHMARK(BM_TryLockUncontended);

void BM_HistogramAdd(benchmark::State& state) {
  stats::Histogram h(0.05, 5000.0);
  double v = 0.0;
  for (auto _ : state) {
    h.add(v);
    v += 0.37;
    if (v > 4000.0) v = 0.0;
  }
}
BENCHMARK(BM_HistogramAdd);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Events dispatched per second by the DES kernel.
  for (auto _ : state) {
    sim::Simulation sim;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
