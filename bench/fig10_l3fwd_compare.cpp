// Figure 10: L3 forwarder running static DPDK, Metronome and XDP —
// latency boxplots (a) and total CPU usage (b) at 10/5/1/0.5 Gbps.
//
// XDP core counts follow the paper: 4 cores at 10 and 5 Gbps (the minimum
// not to lose packets on ixgbe), 1 core at 1 and 0.5 Gbps.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figure 10 - static DPDK vs Metronome vs XDP (l3fwd)",
                "DPDK: lowest latency, flat 100% CPU. Metronome: ~2x DPDK latency, "
                "40%+ CPU saving even at line rate. XDP: highest CPU under load "
                "(~200%+ with 4 cores), zero CPU at idle");

  stats::Table table({"rate (Gbps)", "driver", "cores", "median lat (us)",
                      "lat [p25-p75] (p5-p95)", "CPU (%)", "loss (permille)"});

  for (const double gbps : {10.0, 5.0, 1.0, 0.5}) {
    const double mpps = 14.88 * gbps / 10.0;
    struct Row {
      apps::DriverKind kind;
      const char* name;
      int queues;
      int cores;
    };
    const int xdp_cores = gbps >= 5.0 ? 4 : 1;
    const Row rows[] = {
        {apps::DriverKind::kStaticPolling, "static DPDK", 1, 1},
        {apps::DriverKind::kMetronome, "Metronome", 1, 3},
        {apps::DriverKind::kXdp, "XDP", xdp_cores, xdp_cores},
    };
    for (const Row& row : rows) {
      apps::ExperimentConfig cfg;
      cfg.driver = row.kind;
      cfg.n_queues = row.queues;
      cfg.n_cores = row.cores;
      // XDP spreads the same total rate over its queues via RSS.
      cfg.workload.rate_mpps = mpps;
      cfg.workload.n_flows = 1024;
      cfg.warmup = w.warmup;
      cfg.measure = w.measure;
      const auto r = apps::run_experiment(cfg);
      table.add_row({bench::num(gbps, 1), row.name, bench::num(row.cores, 0),
                     bench::num(r.latency_us.median), bench::boxplot_str(r.latency_us),
                     bench::num(r.cpu_percent, 1), bench::num(r.loss_permille, 3)});
    }
  }
  table.print();
  return 0;
}
