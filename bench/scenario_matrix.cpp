// Scenario matrix: every registered scenario on every enabled backend.
//
// Three jobs in one binary:
//   1. *Coverage* — run the whole scenario registry (src/scenario/) so
//      every workload shape (CBR, Poisson, IMIX, unbalanced, MMPP,
//      Pareto trains, incast, trace replay, per-flow populations) is
//      exercised end to end on every event-queue backend.
//   2. *Cross-backend identity* — for each scenario the backends must
//      produce an identical telemetry fingerprint: every registered
//      counter, summary and latency-histogram bin across every layer
//      (stats::MetricSnapshot::fingerprint). Any divergence exits 1;
//      CI runs this with --fast.
//   3. *Sweep determinism* — the matrix is executed twice, on --jobs
//      workers and again single-threaded, and the two merged JSON
//      reports (timing excluded) must be byte-identical. A scheduling
//      dependence in the runner or any shared mutable state in the app
//      stack fails the bench.
//
// Extra flags (see common.hpp): --list prints the registered scenario
// names one per line and exits 0; --trace=<file> replays an external
// pcap through the kTrace scenarios instead of the synthesised §V-F.4
// trace (identity checks still apply — a trace shard is as deterministic
// as any other); --only=a,b,c restricts the sweep (the sanitizer CI job
// runs just the fault scenarios); --deadline=SECONDS arms the per-shard
// wall-clock watchdog.
//
// Hardened execution: a shard that throws is captured into the report's
// `failures` section (and retried once) instead of terminating the
// process; the bench prints a per-shard failure summary to stderr and
// exits nonzero. Fault-bearing scenarios additionally appear in the
// report's `fault_matrix` block, and are held to the same cross-backend
// and cross-jobs identity gates as healthy ones.
//
// Writes the merged report (timing included) to BENCH_scenarios.json.
#include <fstream>
#include <iostream>
#include <map>

#include "common.hpp"
#include "scenario/registry.hpp"

using namespace metro;
using scenario::BackendKind;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, bench::BackendChoice::kAll,
                                      bench::default_jobs());
  if (args.list) {
    // Greppable registry listing for scripts/CI: names only, one per line.
    for (const auto& s : scenario::all_scenarios()) std::cout << s.name << "\n";
    return 0;
  }

  bench::header("Scenario matrix - all registered scenarios x event-queue backends",
                "every workload shape must produce an identical full-telemetry "
                "fingerprint on both backends, and the sweep must merge "
                "identically for any worker count");

  scenario::SweepMatrix matrix;
  if (args.only.empty()) {
    for (const auto& s : scenario::all_scenarios()) matrix.scenarios.push_back(s.name);
  } else {
    // --only=a,b,c: validate the names eagerly (a typo must fail at
    // launch, same policy as the flag parser).
    for (const auto& name : args.only) {
      if (scenario::find_scenario(name) == nullptr) {
        std::cerr << "unknown scenario '" << name << "' in --only (see --list)\n";
        return 2;
      }
      matrix.scenarios.push_back(name);
    }
  }
  matrix.backends = bench::backend_kinds(args.backend);
  if (args.series_us > 0.0) matrix.series_interval = sim::from_micros(args.series_us);
  if (args.fast) {
    // Identity holds for any window; short ones keep the CI step cheap.
    matrix.warmup = 10 * sim::kMillisecond;
    matrix.measure = 25 * sim::kMillisecond;
  }

  auto shards = scenario::SweepRunner::expand(matrix);
  if (!args.trace.empty()) {
    // ROADMAP item: replay an *external* pcap through the kTrace arrival
    // model. Only trace-model shards are affected; everything else runs
    // its registered workload.
    std::size_t patched = 0;
    for (auto& s : shards) {
      if (s.config.workload.model == apps::ArrivalModel::kTrace) {
        s.config.workload.trace.path = args.trace;
        ++patched;
      }
    }
    std::cout << "external trace '" << args.trace << "' wired into " << patched
              << " kTrace shard(s)\n\n";
  }
  const auto t0 = std::chrono::steady_clock::now();
  scenario::SweepRunner runner(args.jobs);
  runner.set_shard_deadline(args.deadline_s);
  // Breadth over depth: one small ring per shard keeps the merged Chrome
  // export loadable and cheap across the whole matrix (drops are counted).
  if (!args.trace_out.empty()) runner.set_tracing(1u << 10);
  // The hardened runner captures per-shard exceptions into the results
  // (ShardResult::failed/error) — a shard that cannot even be assembled
  // (e.g. an unreadable --trace file) is reported and counted below
  // instead of taking the whole matrix down.
  std::vector<scenario::ShardResult> results = runner.run(shards);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  stats::Table table({"scenario", "backend", "rx", "tx", "dropped", "processed",
                      "p50 lat (us)", "wall (s)"});
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (results[i].failed) {
      table.add_row({shards[i].scenario, scenario::backend_name(shards[i].backend), "FAILED",
                     "-", "-", "-", "-", "-"});
      continue;
    }
    const auto& c = results[i].counters;
    table.add_row({shards[i].scenario, scenario::backend_name(shards[i].backend),
                   std::to_string(c.rx), std::to_string(c.tx), std::to_string(c.dropped),
                   std::to_string(c.processed),
                   bench::num(results[i].result.latency_us.median),
                   bench::num(results[i].wall_seconds)});
  }
  table.print();
  std::cout << "\n" << shards.size() << " shards on " << args.jobs << " job(s), elapsed "
            << bench::num(elapsed, 2) << " s\n";

  // --- per-shard failures ----------------------------------------------
  const std::size_t n_failed = scenario::failed_count(results);
  if (n_failed > 0) {
    std::cerr << "\n" << n_failed << " shard(s) failed:\n"
              << scenario::failure_summary(shards, results);
  }

  // --- cross-backend identity ------------------------------------------
  bool diverged = false;
  std::map<std::string, std::vector<std::size_t>> by_scenario;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    by_scenario[shards[i].scenario].push_back(i);
  }
  for (const auto& [name, idx] : by_scenario) {
    for (std::size_t j = 1; j < idx.size(); ++j) {
      const auto& a = results[idx[0]];
      const auto& b = results[idx[j]];
      // Failed shards have no telemetry to compare; they are already
      // accounted in the failure summary and the exit status.
      if (a.failed || b.failed) continue;
      // Full-set identity: the fingerprint covers every registered metric
      // of every layer (the old hand-picked counter/digest comparison is
      // a strict subset of it); final_clock covers the kernel clock.
      if (a.fingerprint != b.fingerprint || a.final_clock != b.final_clock) {
        diverged = true;
        std::cerr << "BACKEND DIVERGENCE in scenario '" << name << "': "
                  << scenario::backend_name(shards[idx[0]].backend) << " (rx "
                  << a.counters.rx << ", tx " << a.counters.tx << ", fingerprint "
                  << a.fingerprint << ") vs "
                  << scenario::backend_name(shards[idx[j]].backend) << " (rx "
                  << b.counters.rx << ", tx " << b.counters.tx << ", fingerprint "
                  << b.fingerprint << ")\n";
      }
    }
  }
  if (!diverged && matrix.backends.size() > 1) {
    std::cout << "cross-backend check: all " << by_scenario.size()
              << " scenarios identical across " << matrix.backends.size() << " backends\n";
  }

  // --- sweep determinism: jobs=N vs jobs=1 must merge identically ------
  bool nondeterministic = false;
  if (args.jobs > 1) {
    // Same runner configuration, one worker: failure capture included —
    // a deterministic failure must produce the identical `failures`
    // section on any worker count. Deliberately untraced: the identity
    // gate below also proves tracing itself never perturbs results.
    scenario::SweepRunner serial_runner(1);
    serial_runner.set_shard_deadline(args.deadline_s);
    const std::vector<scenario::ShardResult> serial = serial_runner.run(shards);
    const std::string parallel_json = scenario::report_json(shards, results, false);
    const std::string serial_json = scenario::report_json(shards, serial, false);
    if (parallel_json != serial_json) {
      nondeterministic = true;
      std::cerr << "SWEEP NONDETERMINISM: merged report differs between --jobs="
                << args.jobs << " and --jobs=1\n";
    } else {
      std::cout << "determinism check: --jobs=" << args.jobs
                << " and --jobs=1 reports are byte-identical\n";
    }
  }

  std::ofstream("BENCH_scenarios.json") << scenario::report_json(shards, results, true, &runner);
  std::cout << "wrote BENCH_scenarios.json\n";
  if (!args.trace_out.empty()) bench::write_sweep_trace(args.trace_out, shards, results, runner);
  if (diverged || nondeterministic || n_failed > 0) {
    std::cerr << "\nFAIL:";
    if (diverged) std::cerr << " cross-backend divergence";
    if (nondeterministic) std::cerr << " nondeterministic sweep merge";
    if (n_failed > 0) std::cerr << " " << n_failed << " failed shard(s)";
    std::cerr << "\n";
    return 1;
  }
  return 0;
}
