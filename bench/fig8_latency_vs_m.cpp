// Figure 8: latency versus the number of threads M at 10 Gbps and 1 Gbps.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figure 8 - latency vs M",
                "more threads -> longer primary sleeps (eq. 13) -> higher latency at "
                "10 Gbps, and mostly higher variance at 1 Gbps");

  stats::Table table(
      {"rate (Gbps)", "M", "mean (us)", "stddev (us)", "median [p25-p75] (p5-p95)"});
  for (const double gbps : {10.0, 1.0}) {
    for (const int m : {2, 3, 4, 5, 6}) {
      apps::ExperimentConfig cfg;
      cfg.driver = apps::DriverKind::kMetronome;
      cfg.met.n_threads = m;
      cfg.n_cores = std::max(3, m);
      cfg.workload.rate_mpps = 14.88 * gbps / 10.0;
      cfg.warmup = w.warmup;
      cfg.measure = w.measure;
      const auto r = apps::run_experiment(cfg);
      table.add_row({bench::num(gbps, 0), bench::num(m, 0), bench::num(r.latency_us.mean),
                     bench::num(r.latency_us.stddev), bench::boxplot_str(r.latency_us)});
    }
  }
  table.print();
  return 0;
}
