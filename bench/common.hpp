// Shared helpers for the per-figure/table bench binaries.
//
// Each binary regenerates one table or figure from the paper's §V (the
// full binary -> figure map lives in docs/BENCHMARKS.md). Output
// convention: a header naming the experiment, the paper's qualitative
// expectation, then an aligned table of the regenerated rows.
//
// Common CLI flags:
//   --fast                shrink the measurement windows (CI smoke mode)
//   --backend=heap|ladder|both
//                         which event-queue backend(s) a kernel-level
//                         bench drives (default: both). Figure benches run
//                         the full app stack, which binds to the default
//                         heap backend, and ignore this flag.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/experiment.hpp"
#include "stats/table.hpp"

namespace metro::bench {

inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

/// Event-queue backend selection for kernel-level benches.
enum class BackendChoice { kHeap, kLadder, kBoth };

inline BackendChoice backend_choice(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const char* v = argv[i] + 10;
      if (std::strcmp(v, "heap") == 0) return BackendChoice::kHeap;
      if (std::strcmp(v, "ladder") == 0) return BackendChoice::kLadder;
      if (std::strcmp(v, "both") == 0) return BackendChoice::kBoth;
      // A misconfigured CI step must fail loudly, not silently run the
      // default (doubling runtime and changing the JSON shape).
      std::cerr << "unknown --backend value '" << v << "' (heap|ladder|both)\n";
      std::exit(2);
    }
  }
  return BackendChoice::kBoth;
}

inline bool use_heap(BackendChoice c) { return c != BackendChoice::kLadder; }
inline bool use_ladder(BackendChoice c) { return c != BackendChoice::kHeap; }

inline void header(const std::string& title, const std::string& paper_expectation) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_expectation << "\n\n";
}

/// Default measurement windows (shrunk by --fast).
struct Windows {
  sim::Time warmup;
  sim::Time measure;
};

inline Windows windows(bool fast) {
  if (fast) return {50 * sim::kMillisecond, 100 * sim::kMillisecond};
  return {200 * sim::kMillisecond, 800 * sim::kMillisecond};
}

inline std::string num(double v, int p = 2) { return stats::Table::num(v, p); }

/// Format a latency boxplot as "median [p25-p75] (p5-p95)".
inline std::string boxplot_str(const stats::Boxplot& b) {
  return num(b.median) + " [" + num(b.p25) + "-" + num(b.p75) + "] (" + num(b.whisker_lo) + "-" +
         num(b.whisker_hi) + ")";
}

}  // namespace metro::bench
