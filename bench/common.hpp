// Shared helpers for the per-figure/table bench binaries.
//
// Each binary regenerates one table or figure from the paper's §V (the
// full binary -> figure map lives in docs/BENCHMARKS.md). Output
// convention: a header naming the experiment, the paper's qualitative
// expectation, then an aligned table of the regenerated rows.
//
// Common CLI flags (parse_args() is the one shared parser):
//   --fast                shrink the measurement windows (CI smoke mode)
//   --backend=heap|ladder|both
//                         which event-queue backend(s) the bench drives.
//                         The full app stack is generic over the backend,
//                         so the figure benches honour this flag too:
//                         kernel_throughput, fig13/14 and scenario_matrix
//                         default to both (fig13 and scenario_matrix
//                         cross-check that the backends produce identical
//                         packet counters); the remaining figure benches
//                         default to heap, the traditional
//                         figure-generation path.
//   --jobs=N              worker threads for benches that sweep through
//                         scenario::SweepRunner. Results are bit-identical
//                         for any N; only wall time changes. Benches whose
//                         headline *is* wall time default to 1.
//   --trace=<file>        external pcap to replay through the kTrace
//                         arrival model (bench_scenario_matrix); absent =
//                         the synthesised §V-F.4 trace.
//   --list                bench_scenario_matrix: print registered scenario
//                         names, one per line, and exit 0.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "apps/experiment.hpp"
#include "scenario/sweep.hpp"
#include "stats/table.hpp"

namespace metro::bench {

inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

/// Event-queue backend selection.
enum class BackendChoice { kHeap, kLadder, kBoth };

inline BackendChoice backend_choice(int argc, char** argv,
                                    BackendChoice def = BackendChoice::kBoth) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const char* v = argv[i] + 10;
      if (std::strcmp(v, "heap") == 0) return BackendChoice::kHeap;
      if (std::strcmp(v, "ladder") == 0) return BackendChoice::kLadder;
      if (std::strcmp(v, "both") == 0) return BackendChoice::kBoth;
      // A misconfigured CI step must fail loudly, not silently run the
      // default (doubling runtime and changing the JSON shape).
      std::cerr << "unknown --backend value '" << v << "' (heap|ladder|both)\n";
      std::exit(2);
    }
  }
  return def;
}

inline bool use_heap(BackendChoice c) { return c != BackendChoice::kLadder; }
inline bool use_ladder(BackendChoice c) { return c != BackendChoice::kHeap; }

/// The enabled backends as SweepRunner shard kinds, heap first.
inline std::vector<scenario::BackendKind> backend_kinds(BackendChoice c) {
  std::vector<scenario::BackendKind> out;
  if (use_heap(c)) out.push_back(scenario::BackendKind::kHeap);
  if (use_ladder(c)) out.push_back(scenario::BackendKind::kLadder);
  return out;
}

/// Default worker count for benches whose sweeps run through
/// scenario::SweepRunner: half the hardware threads (each shard is a
/// single-threaded simulation; leaving headroom keeps the host usable),
/// at least 1, at most 8.
inline int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw / 2, 1u, 8u));
}

/// --jobs=N (defaults to `def`). Rejects non-positive or malformed values
/// loudly, same policy as --backend.
inline int jobs_flag(int argc, char** argv, int def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      char* end = nullptr;
      const long v = std::strtol(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0' || v < 1 || v > 1024) {
        std::cerr << "bad --jobs value '" << (argv[i] + 7) << "' (want 1..1024)\n";
        std::exit(2);
      }
      return static_cast<int>(v);
    }
  }
  return def;
}

/// --trace=<file> (empty when absent). The value is a path; existence is
/// checked where it is opened, so a typo fails with a clear error there.
inline std::string trace_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      const char* v = argv[i] + 8;
      if (*v == '\0') {
        std::cerr << "--trace needs a pcap path (--trace=<file>)\n";
        std::exit(2);
      }
      return v;
    }
  }
  return {};
}

inline bool list_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) return true;
  }
  return false;
}

/// The shared flag set, parsed once per bench (the one place --fast /
/// --backend / --jobs / --trace / --list spellings live).
struct Args {
  bool fast = false;
  BackendChoice backend = BackendChoice::kBoth;
  int jobs = 1;
  std::string trace;  ///< external pcap for kTrace scenarios; empty = synthesise
  bool list = false;  ///< print registry names and exit (scenario_matrix)
};

inline Args parse_args(int argc, char** argv, BackendChoice def_backend,
                       int def_jobs) {
  Args a;
  a.fast = fast_mode(argc, argv);
  a.backend = backend_choice(argc, argv, def_backend);
  a.jobs = jobs_flag(argc, argv, def_jobs);
  a.trace = trace_flag(argc, argv);
  a.list = list_flag(argc, argv);
  return a;
}

inline void header(const std::string& title, const std::string& paper_expectation) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_expectation << "\n\n";
}

/// Default measurement windows (shrunk by --fast).
struct Windows {
  sim::Time warmup;
  sim::Time measure;
};

inline Windows windows(bool fast) {
  if (fast) return {50 * sim::kMillisecond, 100 * sim::kMillisecond};
  return {200 * sim::kMillisecond, 800 * sim::kMillisecond};
}

inline std::string num(double v, int p = 2) { return stats::Table::num(v, p); }

/// Format a latency boxplot as "median [p25-p75] (p5-p95)".
inline std::string boxplot_str(const stats::Boxplot& b) {
  return num(b.median) + " [" + num(b.p25) + "-" + num(b.p75) + "] (" + num(b.whisker_lo) + "-" +
         num(b.whisker_hi) + ")";
}

}  // namespace metro::bench
