// Shared helpers for the per-figure/table bench binaries.
//
// Each binary regenerates one table or figure from the paper's §V. Output
// convention: a header naming the experiment, the paper's qualitative
// expectation, then an aligned table of the regenerated rows. Pass --fast
// to any bench to shrink the measurement windows (CI smoke mode).
#pragma once

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/experiment.hpp"
#include "stats/table.hpp"

namespace metro::bench {

inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

inline void header(const std::string& title, const std::string& paper_expectation) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_expectation << "\n\n";
}

/// Default measurement windows (shrunk by --fast).
struct Windows {
  sim::Time warmup;
  sim::Time measure;
};

inline Windows windows(bool fast) {
  if (fast) return {50 * sim::kMillisecond, 100 * sim::kMillisecond};
  return {200 * sim::kMillisecond, 800 * sim::kMillisecond};
}

inline std::string num(double v, int p = 2) { return stats::Table::num(v, p); }

/// Format a latency boxplot as "median [p25-p75] (p5-p95)".
inline std::string boxplot_str(const stats::Boxplot& b) {
  return num(b.median) + " [" + num(b.p25) + "-" + num(b.p75) + "] (" + num(b.whisker_lo) + "-" +
         num(b.whisker_hi) + ")";
}

}  // namespace metro::bench
