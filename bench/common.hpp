// Shared helpers for the per-figure/table bench binaries.
//
// Each binary regenerates one table or figure from the paper's §V (the
// full binary -> figure map lives in docs/BENCHMARKS.md). Output
// convention: a header naming the experiment, the paper's qualitative
// expectation, then an aligned table of the regenerated rows.
//
// Common CLI flags (parse_args() is the one shared parser):
//   --fast                shrink the measurement windows (CI smoke mode)
//   --backend=heap|ladder|wheel|both|all
//                         which event-queue backend(s) the bench drives.
//                         The full app stack is generic over the backend,
//                         so the figure benches honour this flag too:
//                         "both" is the historical heap+ladder pair, "all"
//                         adds the timing wheel. kernel_throughput,
//                         fig13/14 and scenario_matrix default to all
//                         (fig13 and scenario_matrix cross-check that the
//                         backends produce identical packet counters); the
//                         remaining figure benches default to heap, the
//                         traditional figure-generation path.
//   --jobs=N              worker threads for benches that sweep through
//                         scenario::SweepRunner. Results are bit-identical
//                         for any N; only wall time changes. Benches whose
//                         headline *is* wall time default to 1.
//   --trace=<file>        external pcap to replay through the kTrace
//                         arrival model (bench_scenario_matrix); absent =
//                         the synthesised §V-F.4 trace.
//   --list                bench_scenario_matrix: print registered scenario
//                         names, one per line, and exit 0.
//   --only=a,b,c          bench_scenario_matrix: restrict the sweep to the
//                         named scenarios (e.g. the fault scenarios in the
//                         sanitizer CI job).
//   --deadline=SECONDS    per-shard wall-clock deadline; a shard that
//                         exceeds it fails (and is reported) instead of
//                         wedging the sweep.
//   --series=INTERVAL_US  sample the full telemetry set every INTERVAL_US
//                         of sim time during measurement; sweep benches
//                         emit the per-window tracks as a `timeseries`
//                         block per shard (schema in docs/BENCHMARKS.md),
//                         fig9 prints a per-window table. Pure observer:
//                         results and fingerprints are unchanged.
//   --trace-out=<file>    write a Chrome trace-event JSON (chrome://tracing
//                         / Perfetto) of the run: kernel fire/cascade
//                         instants, NIC burst/flush instants, Metronome
//                         sleep and drain spans, fault instants, and (for
//                         sweeps) per-worker wall-clock shard spans.
//   --crypto=calibrated|live
//                         fig16 ipsec: calibrated charges the fitted
//                         per-packet cost only; live also executes the
//                         real ESP gateway per packet (simulated results
//                         identical, wall time measures the crypto).
//   --flows=N             bench_kernel_throughput: run the full-stack
//                         scale block on one custom per-flow population
//                         instead of the registry 1m/4m/16m ladder (the
//                         wheel gets its for_population geometry).
//
// Parsing is strict: unknown flags and malformed numeric values print the
// usage text and exit 2. Benches that only take --fast use parse_fast(),
// with the same policy.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "apps/experiment.hpp"
#include "scenario/sweep.hpp"
#include "stats/table.hpp"
#include "stats/trace.hpp"

namespace metro::bench {

/// Event-queue backend selection. kBoth is the historical heap+ladder
/// pair (scripts predating the wheel keep their meaning); kAll is every
/// backend the kernel has.
enum class BackendChoice { kHeap, kLadder, kWheel, kBoth, kAll };

/// How the ipsec bench path treats per-packet crypto. kCalibrated charges
/// calib::kIpsecPerPacketCost only (the historical behaviour; simulated
/// results are the reference). kLive additionally executes the real ESP
/// gateway per drained descriptor via nic::PacketWork — simulated results
/// stay bit-identical, but wall time now contains the crypto substrate, so
/// wall-clock simulated-packets/s measures it end to end.
enum class CryptoMode { kCalibrated, kLive };

inline bool use_heap(BackendChoice c) {
  return c == BackendChoice::kHeap || c == BackendChoice::kBoth || c == BackendChoice::kAll;
}
inline bool use_ladder(BackendChoice c) {
  return c == BackendChoice::kLadder || c == BackendChoice::kBoth || c == BackendChoice::kAll;
}
inline bool use_wheel(BackendChoice c) {
  return c == BackendChoice::kWheel || c == BackendChoice::kAll;
}

/// The enabled backends as SweepRunner shard kinds, heap first.
inline std::vector<scenario::BackendKind> backend_kinds(BackendChoice c) {
  std::vector<scenario::BackendKind> out;
  if (use_heap(c)) out.push_back(scenario::BackendKind::kHeap);
  if (use_ladder(c)) out.push_back(scenario::BackendKind::kLadder);
  if (use_wheel(c)) out.push_back(scenario::BackendKind::kWheel);
  return out;
}

/// Default worker count for benches whose sweeps run through
/// scenario::SweepRunner: half the hardware threads (each shard is a
/// single-threaded simulation; leaving headroom keeps the host usable),
/// at least 1, at most 8.
inline int default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw / 2, 1u, 8u));
}

/// The shared flag set, parsed once per bench (the one place --fast /
/// --backend / --jobs / --trace / --list / --only / --deadline spellings
/// live).
struct Args {
  bool fast = false;
  BackendChoice backend = BackendChoice::kBoth;
  int jobs = 1;
  std::string trace;  ///< external pcap for kTrace scenarios; empty = synthesise
  bool list = false;  ///< print registry names and exit (scenario_matrix)
  std::vector<std::string> only;  ///< scenario filter; empty = all (scenario_matrix)
  double deadline_s = 0.0;        ///< per-shard wall-clock deadline; 0 = off
  CryptoMode crypto = CryptoMode::kCalibrated;  ///< fig16 ipsec crypto mode
  double series_us = 0.0;   ///< telemetry sampling interval in us; 0 = off
  std::string trace_out;    ///< Chrome trace output path; empty = no tracing
  std::size_t flows = 0;    ///< kernel_throughput scale-block population; 0 = registry defaults
};

inline const char* usage_text() {
  return "flags:\n"
         "  --fast               shrink measurement windows (CI smoke mode)\n"
         "  --backend=heap|ladder|wheel|both|all\n"
         "  --jobs=N             sweep worker threads (1..1024)\n"
         "  --trace=<file>       external pcap for kTrace scenarios\n"
         "  --list               print registered scenario names and exit\n"
         "  --only=a,b,c         restrict the sweep to the named scenarios\n"
         "  --deadline=SECONDS   per-shard wall-clock deadline (> 0)\n"
         "  --series=INTERVAL_US sample telemetry every INTERVAL_US of sim time\n"
         "  --trace-out=<file>   write a Chrome trace-event JSON of the run\n"
         "  --crypto=calibrated|live\n"
         "                       fig16 ipsec: charge the calibrated cost only, or\n"
         "                       also run the real ESP gateway per packet\n"
         "  --flows=N            kernel_throughput: run the full-stack scale block\n"
         "                       on one custom per-flow population (1..2^26)\n"
         "                       instead of the registry's 1m/4m/16m ladder\n";
}

/// Strict single-pass parser behind parse_args(): every argv entry must
/// be a recognised flag with a well-formed value. Returns false (with a
/// one-line reason in `error`) on the first unknown flag or malformed
/// numeric — a typo like --backed=ladder or --jobs=abc must never
/// silently run defaults, which is how a misconfigured overnight sweep
/// produces wrong-but-plausible numbers. Split from parse_args so tests
/// can exercise the policy without exiting.
inline bool try_parse_args(int argc, char** argv, BackendChoice def_backend, int def_jobs,
                           Args& out, std::string& error) {
  out = Args{};
  out.backend = def_backend;
  out.jobs = def_jobs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      out.fast = true;
    } else if (arg == "--list") {
      out.list = true;
    } else if (arg.rfind("--backend=", 0) == 0) {
      const std::string v = arg.substr(10);
      if (v == "heap") {
        out.backend = BackendChoice::kHeap;
      } else if (v == "ladder") {
        out.backend = BackendChoice::kLadder;
      } else if (v == "wheel") {
        out.backend = BackendChoice::kWheel;
      } else if (v == "both") {
        out.backend = BackendChoice::kBoth;
      } else if (v == "all") {
        out.backend = BackendChoice::kAll;
      } else {
        error = "unknown --backend value '" + v + "' (heap|ladder|wheel|both|all)";
        return false;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const std::string v = arg.substr(7);
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || *end != '\0' || n < 1 || n > 1024) {
        error = "bad --jobs value '" + v + "' (want 1..1024)";
        return false;
      }
      out.jobs = static_cast<int>(n);
    } else if (arg.rfind("--trace=", 0) == 0) {
      out.trace = arg.substr(8);
      if (out.trace.empty()) {
        error = "--trace needs a pcap path (--trace=<file>)";
        return false;
      }
    } else if (arg.rfind("--only=", 0) == 0) {
      const std::string v = arg.substr(7);
      std::size_t start = 0;
      while (start <= v.size()) {
        const std::size_t comma = v.find(',', start);
        const std::string name =
            v.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) out.only.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (out.only.empty()) {
        error = "--only needs a comma-separated scenario list (--only=a,b)";
        return false;
      }
    } else if (arg.rfind("--deadline=", 0) == 0) {
      const std::string v = arg.substr(11);
      char* end = nullptr;
      const double s = std::strtod(v.c_str(), &end);
      if (v.empty() || *end != '\0' || !(s > 0.0)) {
        error = "bad --deadline value '" + v + "' (want seconds > 0)";
        return false;
      }
      out.deadline_s = s;
    } else if (arg.rfind("--series=", 0) == 0) {
      const std::string v = arg.substr(9);
      char* end = nullptr;
      const double us = std::strtod(v.c_str(), &end);
      if (v.empty() || *end != '\0' || !(us > 0.0)) {
        error = "bad --series value '" + v + "' (want microseconds > 0)";
        return false;
      }
      out.series_us = us;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      out.trace_out = arg.substr(12);
      if (out.trace_out.empty()) {
        error = "--trace-out needs a file path (--trace-out=<file>)";
        return false;
      }
    } else if (arg.rfind("--flows=", 0) == 0) {
      const std::string v = arg.substr(8);
      char* end = nullptr;
      const long long n = std::strtoll(v.c_str(), &end, 10);
      if (v.empty() || *end != '\0' || n < 1 || n > (1LL << 26)) {
        error = "bad --flows value '" + v + "' (want 1..2^26)";
        return false;
      }
      out.flows = static_cast<std::size_t>(n);
    } else if (arg.rfind("--crypto=", 0) == 0) {
      const std::string v = arg.substr(9);
      if (v == "calibrated") {
        out.crypto = CryptoMode::kCalibrated;
      } else if (v == "live") {
        out.crypto = CryptoMode::kLive;
      } else {
        error = "unknown --crypto value '" + v + "' (calibrated|live)";
        return false;
      }
    } else {
      error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

inline Args parse_args(int argc, char** argv, BackendChoice def_backend, int def_jobs) {
  Args a;
  std::string error;
  if (!try_parse_args(argc, argv, def_backend, def_jobs, a, error)) {
    std::cerr << error << "\n" << usage_text();
    std::exit(2);
  }
  return a;
}

/// Strict parser for the figure benches whose only flag is --fast. Unknown
/// flags get the same usage-and-exit-2 treatment as parse_args — a typoed
/// `--fats` overnight run must fail at launch, not run the full windows.
inline bool try_parse_fast(int argc, char** argv, bool& fast, std::string& error) {
  fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else {
      error = "unknown flag '" + std::string(argv[i]) + "'";
      return false;
    }
  }
  return true;
}

inline bool parse_fast(int argc, char** argv) {
  bool fast = false;
  std::string error;
  if (!try_parse_fast(argc, argv, fast, error)) {
    std::cerr << error << "\nflags:\n  --fast    shrink measurement windows (CI smoke mode)\n";
    std::exit(2);
  }
  return fast;
}

/// Write Chrome trace-event JSON for the given lanes to `path`, failing
/// loudly (message + exit 1) when the file cannot be created or written —
/// a silently-missing trace from an overnight run is the same footgun as
/// a silently-defaulted flag. Prints a one-line summary (events, drops).
inline void write_trace_file(const std::string& path,
                             const std::vector<trace::TraceProcess>& lanes) {
  std::size_t events = 0;
  std::uint64_t drops = 0;
  for (const auto& lane : lanes) {
    events += lane.tracer->size();
    drops += lane.tracer->dropped();
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open --trace-out file '" << path << "' for writing\n";
    std::exit(1);
  }
  trace::write_chrome_trace(out, lanes);
  out.flush();
  if (!out) {
    std::cerr << "failed writing --trace-out file '" << path << "'\n";
    std::exit(1);
  }
  std::cout << "trace: " << events << " events in " << lanes.size() << " lane(s) -> " << path;
  if (drops > 0) std::cout << " (" << drops << " dropped at capacity)";
  std::cout << "\n";
}

/// The --trace-out export path of the sweep benches: one process lane per
/// traced shard plus one wall-clock lane per sweep worker.
inline void write_sweep_trace(const std::string& path,
                              const std::vector<scenario::Shard>& shards,
                              const std::vector<scenario::ShardResult>& results,
                              const scenario::SweepRunner& runner) {
  std::vector<trace::TraceProcess> lanes;
  for (std::size_t i = 0; i < shards.size() && i < results.size(); ++i) {
    if (results[i].trace == nullptr) continue;
    lanes.push_back(trace::TraceProcess{"shard " + std::to_string(i) + ": " +
                                            shards[i].scenario + "/" +
                                            scenario::backend_name(shards[i].backend),
                                        results[i].trace.get()});
  }
  for (std::size_t w = 0; w < runner.wall_tracers().size(); ++w) {
    lanes.push_back(trace::TraceProcess{"sweep worker " + std::to_string(w) + " (wall)",
                                        runner.wall_tracers()[w].get()});
  }
  write_trace_file(path, lanes);
}

inline void header(const std::string& title, const std::string& paper_expectation) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_expectation << "\n\n";
}

/// Default measurement windows (shrunk by --fast).
struct Windows {
  sim::Time warmup;
  sim::Time measure;
};

inline Windows windows(bool fast) {
  if (fast) return {50 * sim::kMillisecond, 100 * sim::kMillisecond};
  return {200 * sim::kMillisecond, 800 * sim::kMillisecond};
}

inline std::string num(double v, int p = 2) { return stats::Table::num(v, p); }

/// Format a latency boxplot as "median [p25-p75] (p5-p95)".
inline std::string boxplot_str(const stats::Boxplot& b) {
  return num(b.median) + " [" + num(b.p25) + "-" + num(b.p75) + "] (" + num(b.whisker_lo) + "-" +
         num(b.whisker_hi) + ")";
}

}  // namespace metro::bench
