// Shared helpers for the per-figure/table bench binaries.
//
// Each binary regenerates one table or figure from the paper's §V (the
// full binary -> figure map lives in docs/BENCHMARKS.md). Output
// convention: a header naming the experiment, the paper's qualitative
// expectation, then an aligned table of the regenerated rows.
//
// Common CLI flags:
//   --fast                shrink the measurement windows (CI smoke mode)
//   --backend=heap|ladder|both
//                         which event-queue backend(s) the bench drives.
//                         The full app stack is generic over the backend,
//                         so the figure benches honour this flag too:
//                         kernel_throughput and fig13/14 default to both
//                         (fig13 cross-checks that the backends produce
//                         identical packet counters); the remaining
//                         figure benches default to heap, the traditional
//                         figure-generation path.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <type_traits>

#include "apps/experiment.hpp"
#include "stats/table.hpp"

namespace metro::bench {

inline bool fast_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) return true;
  }
  return false;
}

/// Event-queue backend selection.
enum class BackendChoice { kHeap, kLadder, kBoth };

inline BackendChoice backend_choice(int argc, char** argv,
                                    BackendChoice def = BackendChoice::kBoth) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      const char* v = argv[i] + 10;
      if (std::strcmp(v, "heap") == 0) return BackendChoice::kHeap;
      if (std::strcmp(v, "ladder") == 0) return BackendChoice::kLadder;
      if (std::strcmp(v, "both") == 0) return BackendChoice::kBoth;
      // A misconfigured CI step must fail loudly, not silently run the
      // default (doubling runtime and changing the JSON shape).
      std::cerr << "unknown --backend value '" << v << "' (heap|ladder|both)\n";
      std::exit(2);
    }
  }
  return def;
}

inline bool use_heap(BackendChoice c) { return c != BackendChoice::kLadder; }
inline bool use_ladder(BackendChoice c) { return c != BackendChoice::kHeap; }

/// Invoke `fn(std::type_identity<Sim>{}, "name")` for every enabled
/// backend's kernel instantiation — the runtime->compile-time dispatch the
/// backend-generic figure benches share.
template <typename Fn>
inline void for_each_backend(BackendChoice c, Fn&& fn) {
  if (use_heap(c)) fn(std::type_identity<metro::sim::Simulation>{}, "heap");
  if (use_ladder(c)) fn(std::type_identity<metro::sim::LadderSimulation>{}, "ladder");
}

/// Full-run packet counters (warmup + measurement): the cross-backend
/// identity fingerprint. Defined once here so every backend-generic bench
/// checks the same counter set; the tier-1 test
/// (tests/test_backend_fullstack.cpp) deliberately keeps its own, deeper
/// fingerprint (histogram bins included) so a bench bug cannot mask a
/// test bug.
struct RunCounters {
  std::uint64_t rx = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tx = 0;
  std::uint64_t processed = 0;
  bool operator==(const RunCounters&) const = default;
};

/// One Testbed run (assemble, warm up, measure, harvest) with the
/// observables the backend-generic benches report.
struct CountedRun {
  apps::ExperimentResult result;
  RunCounters counters;
  std::uint64_t events = 0;            ///< kernel events over the whole run
  std::size_t pending_at_measure = 0;  ///< pending events at measurement start
  double wall_seconds = 0.0;
};

template <typename Sim>
CountedRun run_counted(const apps::ExperimentConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  apps::BasicTestbed<Sim> bed(cfg);
  bed.start();
  bed.run_until(cfg.warmup);
  bed.begin_measurement();
  CountedRun out;
  out.pending_at_measure = bed.sim().pending_events();
  bed.run_until(cfg.warmup + cfg.measure);
  out.result = bed.finish_measurement();
  out.counters = RunCounters{bed.port().total_rx(), bed.port().total_dropped(),
                             bed.port().tx().total_transmitted(), bed.packets_processed()};
  out.events = bed.sim().events_processed();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

inline void header(const std::string& title, const std::string& paper_expectation) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper: " << paper_expectation << "\n\n";
}

/// Default measurement windows (shrunk by --fast).
struct Windows {
  sim::Time warmup;
  sim::Time measure;
};

inline Windows windows(bool fast) {
  if (fast) return {50 * sim::kMillisecond, 100 * sim::kMillisecond};
  return {200 * sim::kMillisecond, 800 * sim::kMillisecond};
}

inline std::string num(double v, int p = 2) { return stats::Table::num(v, p); }

/// Format a latency boxplot as "median [p25-p75] (p5-p95)".
inline std::string boxplot_str(const stats::Boxplot& b) {
  return num(b.median) + " [" + num(b.p25) + "-" + num(b.p75) + "] (" + num(b.whisker_lo) + "-" +
         num(b.whisker_hi) + ")";
}

}  // namespace metro::bench
