// Figure 15: multi-queue CPU and power under different loads (XL710,
// 4 Rx queues, M = 5, V-bar = 15 us, performance governor).
//
// Backend-generic: --backend=heap|ladder|both selects the event-queue
// backend(s) the stack runs on (default heap, the traditional
// figure-generation path; results are bit-identical across backends, only
// the simulation speed differs).
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::fast_mode(argc, argv);
  const auto choice = bench::backend_choice(argc, argv, bench::BackendChoice::kHeap);
  const auto w = bench::windows(fast);

  bench::header("Figure 15 - multiqueue scaling to the actual traffic",
                "Metronome saves >half of static DPDK's CPU at 37 Mpps line rate, "
                "more at lower rates, and ~2-3 W of package power throughout");

  bench::for_each_backend(choice, [&](auto tag, const std::string& backend) {
    using Sim = typename decltype(tag)::type;
    if (choice == bench::BackendChoice::kBoth) {
      std::cout << "--- backend: " << backend << " ---\n";
    }
    stats::Table table({"rate (Mpps)", "driver", "CPU (%)", "power (W)", "throughput (Mpps)"});
    for (const double mpps : {37.0, 30.0, 20.0, 15.0, 10.0, 0.0}) {
      for (const bool metronome : {false, true}) {
        apps::ExperimentConfig cfg;
        cfg.driver = metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
        cfg.xl710 = true;
        cfg.n_queues = 4;
        cfg.n_cores = metronome ? 5 : 4;
        cfg.met.n_threads = 5;
        cfg.met.target_vacation = 15 * sim::kMicrosecond;
        cfg.workload.rate_mpps = mpps;
        cfg.workload.n_flows = 4096;
        cfg.warmup = w.warmup;
        cfg.measure = w.measure;
        const auto r = apps::run_experiment<Sim>(cfg);
        table.add_row({bench::num(mpps, 0), metronome ? "Metronome" : "static DPDK",
                       bench::num(r.cpu_percent, 1), bench::num(r.package_watts, 2),
                       bench::num(r.throughput_mpps, 1)});
      }
    }
    table.print();
  });
  return 0;
}
