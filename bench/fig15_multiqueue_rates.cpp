// Figure 15: multi-queue CPU and power under different loads (XL710,
// 4 Rx queues, M = 5, V-bar = 15 us, performance governor).
//
// Backend-generic: --backend=heap|ladder|wheel|both|all selects the event-queue
// backend(s) the stack runs on (default heap, the traditional
// figure-generation path; results are bit-identical across backends, only
// the simulation speed differs). The rate x driver matrix is executed by
// scenario::SweepRunner on --jobs workers; the table is identical for any
// job count.
#include "common.hpp"

using namespace metro;
using scenario::Shard;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, bench::BackendChoice::kHeap,
                                      bench::default_jobs());
  const auto w = bench::windows(args.fast);
  const auto backends = bench::backend_kinds(args.backend);

  bench::header("Figure 15 - multiqueue scaling to the actual traffic",
                "Metronome saves >half of static DPDK's CPU at 37 Mpps line rate, "
                "more at lower rates, and ~2-3 W of package power throughout");

  std::vector<Shard> shards;
  for (const auto backend : backends) {
    for (const double mpps : {37.0, 30.0, 20.0, 15.0, 10.0, 0.0}) {
      for (const bool metronome : {false, true}) {
        apps::ExperimentConfig cfg;
        cfg.driver =
            metronome ? apps::DriverKind::kMetronome : apps::DriverKind::kStaticPolling;
        cfg.xl710 = true;
        cfg.n_queues = 4;
        cfg.n_cores = metronome ? 5 : 4;
        cfg.met.n_threads = 5;
        cfg.met.target_vacation = 15 * sim::kMicrosecond;
        cfg.workload.rate_mpps = mpps;
        cfg.workload.n_flows = 4096;
        cfg.warmup = w.warmup;
        cfg.measure = w.measure;
        shards.push_back(Shard{metronome ? "metronome" : "static", backend, cfg});
      }
    }
  }
  const auto results = scenario::SweepRunner(args.jobs).run(shards);

  const std::size_t per_backend = shards.size() / backends.size();
  for (std::size_t b = 0; b < backends.size(); ++b) {
    if (backends.size() > 1) {
      std::cout << "--- backend: " << scenario::backend_name(backends[b]) << " ---\n";
    }
    stats::Table table({"rate (Mpps)", "driver", "CPU (%)", "power (W)",
                        "throughput (Mpps)"});
    for (std::size_t i = b * per_backend; i < (b + 1) * per_backend; ++i) {
      const auto& r = results[i].result;
      table.add_row({bench::num(shards[i].config.workload.rate_mpps, 0),
                     shards[i].scenario == "metronome" ? "Metronome" : "static DPDK",
                     bench::num(r.cpu_percent, 1), bench::num(r.package_watts, 2),
                     bench::num(r.throughput_mpps, 1)});
    }
    table.print();
  }
  return 0;
}
