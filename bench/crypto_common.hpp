// Shared measurement helpers for the crypto substrate benches
// (bench_crypto and the `crypto` block of bench_kernel_throughput).
//
// Reporting follows the qMEMO-style rigor the ROADMAP asks for: every
// number is the median of repeated trials with the IQR alongside, after an
// untimed warm-up run, and every timed loop folds its output into a
// checksum that is published through a volatile sink so the optimiser can
// delete nothing.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/ipsec.hpp"
#include "net/packet.hpp"
#include "net/packet_builder.hpp"
#include "nic/sim_packet.hpp"

namespace metro::bench::cryptob {

/// The fixed key/IV every crypto bench loop uses (the SP 800-38A F.2 key,
/// so the numbers are reproducible against a published vector).
inline constexpr std::array<std::uint8_t, 16> kBenchKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
inline constexpr std::array<std::uint8_t, 16> kBenchIv = {
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};

/// Sink that defeats dead-code elimination: every timed loop accumulates
/// into a checksum and stores it here.
inline volatile std::uint8_t g_sink = 0;

inline double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Interquartile range (p75 - p25) by nearest-rank on the sorted sample.
inline double iqr(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n < 2) return 0.0;
  const auto rank = [&](double q) { return v[std::min(n - 1, static_cast<std::size_t>(q * static_cast<double>(n)))]; };
  return rank(0.75) - rank(0.25);
}

/// Median and IQR of one measured quantity over repeated trials.
struct Sample {
  double median = 0.0;
  double iqr = 0.0;
};

inline Sample sample_of(const std::vector<double>& trials) {
  return {median(trials), iqr(trials)};
}

/// Time `fn(iters)` (which must run the operation `iters` times and
/// return a checksum byte) over `trials` repetitions, after one untimed
/// warm-up call. Returns ns-per-op samples.
template <typename Fn>
Sample time_ns_per_op(int trials, std::uint64_t iters, Fn&& fn) {
  g_sink = static_cast<std::uint8_t>(g_sink ^ fn(iters));  // warm-up, untimed
  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint8_t csum = fn(iters);
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = static_cast<std::uint8_t>(g_sink ^ csum);
    const double total_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    ns.push_back(total_ns / static_cast<double>(iters));
  }
  return sample_of(ns);
}

/// Ratio of two per-trial ns/op medians, the "speedup" convention used in
/// the crypto JSON block: slow/fast, > 1 means `fast` won.
inline double speedup(const Sample& slow, const Sample& fast) {
  return fast.median > 0.0 ? slow.median / fast.median : 0.0;
}

/// In-place CBC over `buf` under kBenchKey/kBenchIv, `iters` times.
/// \tparam kDecrypt false = encrypt direction.
template <typename Cbc, bool kDecrypt>
std::uint8_t cbc_loop(const Cbc& cbc, std::vector<std::uint8_t>& buf, std::uint64_t iters) {
  const std::span<const std::uint8_t, 16> iv(kBenchIv);
  for (std::uint64_t i = 0; i < iters; ++i) {
    if constexpr (kDecrypt) {
      cbc.decrypt(buf, iv, buf);
    } else {
      cbc.encrypt(buf, iv, buf);
    }
  }
  return buf[0];
}

/// HMAC-SHA1-96 tag stream over a fixed message, `iters` tags.
template <typename Hmac>
std::uint8_t hmac_loop(const Hmac& h, std::span<const std::uint8_t> msg, std::uint64_t iters) {
  std::uint8_t csum = 0;
  std::array<std::uint8_t, 12> tag{};
  for (std::uint64_t i = 0; i < iters; ++i) {
    h.compute96(msg, tag);
    csum = static_cast<std::uint8_t>(csum ^ tag[0]);
  }
  return csum;
}

/// One ESP encap+decap round trip per iteration on a fresh template copy.
template <typename Gateway>
std::uint8_t gateway_loop(Gateway& egress, Gateway& ingress, const std::vector<std::uint8_t>& inner,
                          std::uint64_t iters) {
  net::Packet pkt;
  std::uint8_t csum = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    pkt.assign(inner.data(), inner.size());
    if (egress.encap(pkt) && ingress.decap(pkt)) {
      csum = static_cast<std::uint8_t>(csum ^ pkt.data()[0]);
    }
  }
  return csum;
}

/// The SA every crypto bench uses (same shape as the ipsec tests).
inline apps::SecurityAssociation bench_sa() {
  apps::SecurityAssociation sa;
  for (std::size_t i = 0; i < sa.cipher_key.size(); ++i) {
    sa.cipher_key[i] = static_cast<std::uint8_t>(i);
  }
  for (std::size_t i = 0; i < sa.auth_key.size(); ++i) {
    sa.auth_key[i] = static_cast<std::uint8_t>(0xa0 + i);
  }
  sa.tunnel_src = net::ipv4_addr(203, 0, 113, 1);
  sa.tunnel_dst = net::ipv4_addr(203, 0, 113, 2);
  return sa;
}

/// Per-packet live-crypto worker for the --crypto=live bench mode: bound
/// to the drivers' nic::PacketWork hook, it runs the real ESP gateway
/// (encap on a template inner packet, then decap of the produced tunnel
/// packet) for every drained descriptor. Wall-clock work only — it never
/// touches simulated time, so simulation results are bit-identical to the
/// calibrated mode (the fig16 bench asserts exactly that).
/// \tparam Gateway apps::IpsecGateway or apps::ScalarIpsecGateway.
template <typename Gateway>
class LiveGatewayWorker {
 public:
  explicit LiveGatewayWorker(const apps::SecurityAssociation& sa, std::size_t wire_size = 64)
      : egress_(sa), ingress_(sa) {
    net::Packet tmpl;
    const net::FiveTuple tuple{net::ipv4_addr(192, 168, 1, 5), net::ipv4_addr(192, 168, 2, 9),
                               5555, 6666, net::kIpProtoUdp};
    net::build_udp_packet(tmpl, tuple, wire_size);
    inner_.assign(tmpl.data(), tmpl.data() + tmpl.size());
  }

  void operator()(const nic::PacketDesc&) {
    scratch_.assign(inner_.data(), inner_.size());
    const bool ok = egress_.encap(scratch_) && ingress_.decap(scratch_);
    ++processed_;
    if (!ok) ++failures_;
    g_sink = static_cast<std::uint8_t>(g_sink ^ scratch_.data()[0]);
  }

  std::uint64_t processed() const noexcept { return processed_; }
  std::uint64_t failures() const noexcept { return failures_; }

 private:
  Gateway egress_;
  Gateway ingress_;
  net::Packet scratch_;
  std::vector<std::uint8_t> inner_;
  std::uint64_t processed_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace metro::bench::cryptob
