// Figure 9: Metronome's adaptation to a MoonGen-style rate ramp.
//
// The paper modifies MoonGen's rate-control-methods.lua to step the rate up
// every 2 s to 14 Mpps at ~30 s, then back down, over one minute. We replay
// the same profile (time-compressed by default: the dynamics live at the
// microsecond scale, so a 12 s ramp with 0.4 s steps exercises exactly the
// same adaptation path) and sample, every profile step: the true offered
// rate, Metronome's estimated rate (rho-hat * mu), TS, rho and CPU usage.
//
// --series=INTERVAL_US additionally arms a stats::SeriesRecorder on the
// testbed and prints a per-window telemetry table (rx/tx rate, drops,
// mean latency, wake-ups, window fingerprint) after the adaptation table;
// --trace-out=<file> records the run's kernel/NIC/Metronome trace events
// and writes them as Chrome trace-event JSON.
#include <memory>

#include "apps/experiment.hpp"
#include "common.hpp"
#include "stats/time_series.hpp"
#include "tgen/feeder.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, bench::BackendChoice::kHeap, 1);
  const bool fast = args.fast;
  const sim::Time total = fast ? 6 * sim::kSecond : 12 * sim::kSecond;
  const sim::Time step = total / 30;  // 30 rate steps, as in a 60 s / 2 s ramp

  bench::header("Figure 9 - adaptation to a varying load",
                "estimated rate tracks the generated rate; TS moves inversely with "
                "load (eq. 13); CPU rises from ~15-20% idle-ish to ~60% at 14 Mpps");

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.workload.rate_mpps = 0.0;  // the ramp generator below feeds the port
  cfg.warmup = 0;
  cfg.measure = total;

  apps::Testbed bed(cfg);
  std::unique_ptr<trace::Tracer> tracer;
  if (!args.trace_out.empty()) {
    tracer = std::make_unique<trace::Tracer>(1u << 15);
    bed.set_tracer(tracer.get());
  }
  tgen::FlowSet flows(256, 7);
  tgen::RampProfile ramp(0.5e6, 14e6, step, total);
  tgen::ProfileGenerator gen(ramp, total, 64, flows,
                             std::make_unique<tgen::UniformFlowPicker>(256));
  bed.start();
  tgen::attach(bed.sim(), bed.port(), gen);

  // This bench drives the testbed by hand (no begin_measurement), so the
  // series recorder is armed directly; start() must have registered the
  // telemetry tree first so the snapshots carry every layer.
  std::unique_ptr<stats::SeriesRecorder> series;
  if (args.series_us > 0.0) {
    stats::SeriesConfig scfg;
    scfg.interval = sim::from_micros(args.series_us);
    const sim::Time want = total / scfg.interval + 2;
    scfg.capacity = static_cast<std::size_t>(want < 2 ? 2 : (want > 512 ? 512 : want));
    series = std::make_unique<stats::SeriesRecorder>(bed.telemetry(), scfg);
    series->arm(bed.sim());
  }

  const double mu_pps = 1e9 / static_cast<double>(sim::calib::kL3fwdPerPacketCost);

  stats::Table table({"t (s)", "offered (Mpps)", "estimated (Mpps)", "TS (us)", "rho",
                      "CPU (%)"});
  std::uint64_t last_packets = 0;
  bed.window_cpu_percent();  // prime the probe
  for (sim::Time t = step; t <= total; t += step) {
    bed.run_until(t);
    auto* met = bed.metronome();
    const double rho = met->mean_rho();
    const double cpu = bed.window_cpu_percent();
    const std::uint64_t packets = bed.packets_processed();
    const double offered =
        static_cast<double>(packets - last_packets) / sim::to_seconds(step) / 1e6;
    last_packets = packets;
    table.add_row({bench::num(sim::to_seconds(t), 2), bench::num(offered, 2),
                   bench::num(rho * mu_pps / 1e6, 2), bench::num(met->mean_ts_us(), 2),
                   bench::num(rho, 3), bench::num(cpu, 1)});
  }
  table.print();

  if (series) {
    series->finish(bed.sim().now());
    std::cout << "\nper-window telemetry series, interval " << bench::num(args.series_us, 1)
              << " us (" << series->size() << " windows";
    if (series->dropped() > 0) std::cout << ", " << series->dropped() << " dropped at capacity";
    std::cout << "):\n";
    stats::Table st({"t_end (s)", "rx (Mpps)", "tx (Mpps)", "dropped", "lat mean (us)",
                     "wakeups", "fingerprint"});
    sim::Time prev_end = 0;
    for (std::size_t i = 0; i < series->size(); ++i) {
      const stats::SeriesRecorder::Window& win = series->window(i);
      const double dt_s = sim::to_seconds(win.t_end - prev_end);
      prev_end = win.t_end;
      const auto rx = win.delta.counter("port.rx");
      const auto tx = win.delta.counter("port.tx.transmitted");
      std::uint64_t drops = win.delta.counter("port.cap_drops");
      for (int q = 0; q < bed.port().n_rx_queues(); ++q) {
        drops += win.delta.counter("port.q" + std::to_string(q) + ".dropped");
      }
      const stats::Histogram& lat = win.delta.histogram("latency_us");
      std::uint64_t wakeups = 0;
      for (int q = 0;; ++q) {
        const auto* e = win.delta.find("met.q" + std::to_string(q) + ".total_tries");
        if (e == nullptr) break;
        wakeups += e->counter;
      }
      st.add_row({bench::num(sim::to_seconds(win.t_end), 3),
                  bench::num(dt_s > 0.0 ? static_cast<double>(rx) / dt_s / 1e6 : 0.0, 2),
                  bench::num(dt_s > 0.0 ? static_cast<double>(tx) / dt_s / 1e6 : 0.0, 2),
                  std::to_string(drops),
                  bench::num(lat.count() > 0
                                 ? lat.summary().sum() / static_cast<double>(lat.count())
                                 : 0.0, 2),
                  std::to_string(wakeups), std::to_string(win.fingerprint)});
    }
    st.print();
  }

  if (tracer) {
    bench::write_trace_file(args.trace_out, {trace::TraceProcess{"fig9 testbed", tracer.get()}});
  }
  return 0;
}
