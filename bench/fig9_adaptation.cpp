// Figure 9: Metronome's adaptation to a MoonGen-style rate ramp.
//
// The paper modifies MoonGen's rate-control-methods.lua to step the rate up
// every 2 s to 14 Mpps at ~30 s, then back down, over one minute. We replay
// the same profile (time-compressed by default: the dynamics live at the
// microsecond scale, so a 12 s ramp with 0.4 s steps exercises exactly the
// same adaptation path) and sample, every profile step: the true offered
// rate, Metronome's estimated rate (rho-hat * mu), TS, rho and CPU usage.
#include "apps/experiment.hpp"
#include "common.hpp"
#include "tgen/feeder.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const sim::Time total = fast ? 6 * sim::kSecond : 12 * sim::kSecond;
  const sim::Time step = total / 30;  // 30 rate steps, as in a 60 s / 2 s ramp

  bench::header("Figure 9 - adaptation to a varying load",
                "estimated rate tracks the generated rate; TS moves inversely with "
                "load (eq. 13); CPU rises from ~15-20% idle-ish to ~60% at 14 Mpps");

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.workload.rate_mpps = 0.0;  // the ramp generator below feeds the port
  cfg.warmup = 0;
  cfg.measure = total;

  apps::Testbed bed(cfg);
  tgen::FlowSet flows(256, 7);
  tgen::RampProfile ramp(0.5e6, 14e6, step, total);
  tgen::ProfileGenerator gen(ramp, total, 64, flows,
                             std::make_unique<tgen::UniformFlowPicker>(256));
  bed.start();
  tgen::attach(bed.sim(), bed.port(), gen);

  const double mu_pps = 1e9 / static_cast<double>(sim::calib::kL3fwdPerPacketCost);

  stats::Table table({"t (s)", "offered (Mpps)", "estimated (Mpps)", "TS (us)", "rho",
                      "CPU (%)"});
  std::uint64_t last_packets = 0;
  bed.window_cpu_percent();  // prime the probe
  for (sim::Time t = step; t <= total; t += step) {
    bed.run_until(t);
    auto* met = bed.metronome();
    const double rho = met->mean_rho();
    const double cpu = bed.window_cpu_percent();
    const std::uint64_t packets = bed.packets_processed();
    const double offered =
        static_cast<double>(packets - last_packets) / sim::to_seconds(step) / 1e6;
    last_packets = packets;
    table.add_row({bench::num(sim::to_seconds(t), 2), bench::num(offered, 2),
                   bench::num(rho * mu_pps / 1e6, 2), bench::num(met->mean_ts_us(), 2),
                   bench::num(rho, 3), bench::num(cpu, 1)});
  }
  table.print();
  return 0;
}
