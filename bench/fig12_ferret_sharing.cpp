// Figure 12 + Table II: CPU sharing with a CPU-intensive competitor
// (PARSEC ferret stand-in).
//
// Part A (Fig. 12): ferret execution time — alone vs co-scheduled with a
// static-polling l3fwd on one core, and alone vs co-scheduled with the
// three Metronome threads on three cores (Metronome at nice -20, the
// competitor at nice 19, both SCHED_OTHER, as in the paper).
//
// Part B (Table II): forwarding throughput at 14.88 Mpps offered, alone vs
// with the competitor running.
#include "apps/experiment.hpp"
#include "apps/ferret.hpp"
#include "common.hpp"
#include "dpdk/static_polling.hpp"
#include "tgen/feeder.hpp"

using namespace metro;

namespace {

// Ferret execution time with optional packet-path contention.
// mode: 0 = alone, 1 = with static polling (same single core), 2 = with
// Metronome (same three cores).
double ferret_seconds(int mode, sim::Time work, bool fast) {
  apps::ExperimentConfig cfg;
  cfg.driver = mode == 1 ? apps::DriverKind::kStaticPolling : apps::DriverKind::kMetronome;
  cfg.n_cores = mode == 1 ? 1 : 3;
  cfg.workload.rate_mpps = mode == 0 ? 0.0 : 14.88;
  cfg.warmup = 0;
  cfg.measure = fast ? sim::kSecond : 4 * sim::kSecond;

  apps::Testbed bed(cfg);
  if (mode != 0) bed.start();  // mode 0: no packet path at all

  const int n_workers = mode == 1 ? 1 : 3;
  apps::FerretConfig fc;
  fc.total_work = work;
  fc.nice = mode == 1 ? 0 : 19;  // static baseline untuned; Metronome setup tuned
  std::vector<std::shared_ptr<apps::FerretResult>> results;
  for (int i = 0; i < n_workers; ++i) {
    results.push_back(apps::spawn_ferret(bed.sim(), bed.machine().core(i), fc));
  }
  bed.run_until(100 * sim::kSecond);
  double worst = 0.0;
  for (const auto& r : results) {
    if (!r->done()) return -1.0;
    worst = std::max(worst, r->elapsed_seconds());
  }
  return worst;
}

double throughput_mpps(apps::DriverKind kind, bool with_competitor, bool fast) {
  apps::ExperimentConfig cfg;
  cfg.driver = kind;
  cfg.n_cores = kind == apps::DriverKind::kStaticPolling ? 1 : 3;
  cfg.workload.rate_mpps = 14.88;
  if (with_competitor) {
    cfg.competitor.n_workers = cfg.n_cores;
    cfg.competitor.nice = kind == apps::DriverKind::kStaticPolling ? 0 : 19;
  }
  const auto w = bench::windows(fast);
  cfg.warmup = w.warmup;
  cfg.measure = w.measure;
  return apps::run_experiment(cfg).throughput_mpps;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const sim::Time work = fast ? sim::kSecond : 2 * sim::kSecond;

  bench::header("Figure 12 - ferret execution time under CPU sharing",
                "next to a static poller ferret's runtime explodes (~3x in the "
                "paper; ~2x here, equal CFS weights); next to Metronome it grows "
                "only ~10-30%");

  const double alone_1core = ferret_seconds(0, work, fast);
  const double with_static = ferret_seconds(1, work, fast);
  const double with_metronome = ferret_seconds(2, work, fast);

  stats::Table fig12({"scenario", "cores", "ferret time (s)", "stretch"});
  fig12.add_row({"alone", "1", bench::num(alone_1core), "1.00x"});
  fig12.add_row({"w/ static DPDK", "1", bench::num(with_static),
                 bench::num(with_static / alone_1core) + "x"});
  fig12.add_row({"alone", "3", bench::num(alone_1core), "1.00x"});
  fig12.add_row({"w/ Metronome", "3", bench::num(with_metronome),
                 bench::num(with_metronome / alone_1core) + "x"});
  fig12.print();

  std::cout << "\n";
  bench::header("Table II - throughput (Mpps) alone vs with ferret",
                "static DPDK collapses (14.88 -> 7.34 in the paper); Metronome "
                "holds 14.88 in both cases");
  stats::Table t2({"driver", "alone", "w/ ferret"});
  t2.add_row({"static DPDK",
              bench::num(throughput_mpps(apps::DriverKind::kStaticPolling, false, fast)),
              bench::num(throughput_mpps(apps::DriverKind::kStaticPolling, true, fast))});
  t2.add_row({"Metronome",
              bench::num(throughput_mpps(apps::DriverKind::kMetronome, false, fast)),
              bench::num(throughput_mpps(apps::DriverKind::kMetronome, true, fast))});
  t2.print();
  return 0;
}
