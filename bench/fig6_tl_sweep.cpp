// Figure 6: busy tries and CPU usage versus the long timeout TL
// (100..700 us) at line rate.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figure 6 - busy tries and CPU vs TL",
                "longer TL -> fewer wasted wake-ups and slightly lower CPU; most of "
                "the benefit realised by TL = 500 us");

  stats::Table table({"TL (us)", "busy tries (%)", "CPU (%)", "backup success P (eq. 7)"});
  for (const double tl : {100.0, 300.0, 500.0, 700.0}) {
    apps::ExperimentConfig cfg;
    cfg.driver = apps::DriverKind::kMetronome;
    cfg.met.long_timeout = sim::from_micros(tl);
    cfg.workload.rate_mpps = 14.88;
    cfg.warmup = w.warmup;
    cfg.measure = w.measure;
    const auto r = apps::run_experiment(cfg);
    table.add_row({bench::num(tl, 0), bench::num(r.busy_tries_pct, 1),
                   bench::num(r.cpu_percent, 1),
                   bench::num(core::model::backup_success_prob(r.ts_us, tl, cfg.met.n_threads), 4)});
  }
  table.print();
  return 0;
}
