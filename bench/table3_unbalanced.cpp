// Table III: unbalanced traffic across 3 Rx queues — 30% of packets belong
// to one UDP flow, the rest spread uniformly over ~1000 random flows, sent
// at line rate. Per-queue busy tries, total lock tries and rho.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Table III - unbalanced traffic, 3 Rx queues",
                "the hot queue (heavy flow + its RSS share, ~53% of traffic) shows "
                "the highest rho and busy-try %, but less than half the lock tries "
                "of the cold queues: busy queues keep a single primary");

  apps::ExperimentConfig cfg;
  cfg.driver = apps::DriverKind::kMetronome;
  cfg.xl710 = true;
  cfg.n_queues = 3;
  cfg.n_cores = 4;
  cfg.met.n_threads = 4;
  cfg.met.target_vacation = 15 * sim::kMicrosecond;
  cfg.workload.rate_mpps = 30.0;
  cfg.workload.n_flows = 1000;
  cfg.workload.heavy_share = 0.30;
  cfg.warmup = w.warmup;
  cfg.measure = fast ? w.measure : 2 * sim::kSecond;
  const auto r = apps::run_experiment(cfg);

  stats::Table table({"queue", "busy tries (%)", "total tries", "rho", "traffic share (%)"});
  double total_rho = 0.0;
  for (const auto& q : r.queues) total_rho += q.rho;
  for (std::size_t q = 0; q < r.queues.size(); ++q) {
    table.add_row({"#" + std::to_string(q + 1), bench::num(r.queues[q].busy_tries_pct, 2),
                   bench::num(static_cast<double>(r.queues[q].total_tries), 0),
                   bench::num(r.queues[q].rho, 4),
                   bench::num(100.0 * r.queues[q].rho / total_rho, 1)});
  }
  table.print();
  std::cout << "\n(loss: " << bench::num(r.loss_permille, 3)
            << " permille, throughput: " << bench::num(r.throughput_mpps, 1) << " Mpps)\n";
  return 0;
}
