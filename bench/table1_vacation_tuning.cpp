// Table I: mean busy/vacation period, N_V and packet loss for different
// target vacation periods V-bar, at 14.88 Mpps line rate (M = 3,
// TL = 500 us, Intel X520 model).
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Table I - vacation-period tuning at line rate",
                "measured V ~= 2x target (sleep overhead); V-bar = 10 us is the "
                "largest no-loss setting; loss grows monotonically beyond it");

  stats::Table table({"Target V (us)", "Measured V (us)", "Measured B (us)", "NV",
                      "Loss (permille)"});
  for (const double target : {5.0, 10.0, 12.0, 15.0, 20.0}) {
    apps::ExperimentConfig cfg;
    cfg.driver = apps::DriverKind::kMetronome;
    cfg.met.target_vacation = sim::from_micros(target);
    cfg.workload.rate_mpps = 14.88;
    cfg.warmup = w.warmup;
    cfg.measure = w.measure;
    const auto r = apps::run_experiment(cfg);
    table.add_row({bench::num(target, 0), bench::num(r.vacation_us.mean()),
                   bench::num(r.busy_us.mean()), bench::num(r.nv.mean(), 1),
                   bench::num(r.loss_permille, 4)});
  }
  table.print();
  return 0;
}
