// Figure 1: hr_sleep() vs nanosleep() latency boxplots at 1/10/100 us.
//
// Part A replays the calibrated simulation models (what every other bench
// consumes). Part B measures clock_nanosleep live on THIS host — with the
// timer slack forced to 1 ns (the closest stock-kernel equivalent of the
// paper's tuned-nanosleep baseline) — to show the measurement methodology
// and this machine's actual wake-up overhead.
#include "common.hpp"
#include "rt/hr_sleep.hpp"
#include "sim/simulation.hpp"
#include "sim/sleep_service.hpp"
#include "stats/histogram.hpp"

using namespace metro;

namespace {

stats::Boxplot model_boxplot(sim::SleepKind kind, sim::Time requested, int samples) {
  sim::Simulation sim(42);
  sim::SleepServiceConfig cfg;
  cfg.kind = kind;
  cfg.timer_slack = sim::kMicrosecond;
  sim::SleepService svc(sim, cfg);
  stats::Histogram h(0.005, 500.0);
  for (int i = 0; i < samples; ++i) {
    h.add(sim::to_micros(svc.sample_timer_latency(requested)));
  }
  return h.boxplot();
}

stats::Boxplot live_boxplot(sim::Time requested, int samples) {
  stats::Histogram h(0.5, 100000.0);
  for (int i = 0; i < samples; ++i) {
    h.add(static_cast<double>(rt::measure_sleep_latency(requested)) / 1e3);
  }
  return h.boxplot();
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const int model_samples = fast ? 50000 : 1000000;
  const int live_samples = fast ? 500 : 5000;

  bench::header("Figure 1 - sleep service latency (model)",
                "hr_sleep slightly tighter than tuned nanosleep in mean and variance; "
                "actual ~= requested + 2.9..8.5 us overhead");

  stats::Table model({"requested (us)", "service", "mean (us)", "stddev (us)",
                      "median [p25-p75] (p5-p95)"});
  for (const sim::Time req : {1 * sim::kMicrosecond, 10 * sim::kMicrosecond,
                              100 * sim::kMicrosecond}) {
    for (const auto kind : {sim::SleepKind::kHrSleep, sim::SleepKind::kNanosleep}) {
      const auto b = model_boxplot(kind, req, model_samples);
      model.add_row({bench::num(sim::to_micros(req), 0),
                     kind == sim::SleepKind::kHrSleep ? "hr_sleep" : "nanosleep",
                     bench::num(b.mean, 3), bench::num(b.stddev, 3), bench::boxplot_str(b)});
    }
  }
  model.print();

  std::cout << "\n--- live measurement on this host (clock_nanosleep, slack = "
            << (rt::set_min_timer_slack() ? "1 ns" : "default") << ") ---\n";
  stats::Table live({"requested (us)", "mean (us)", "stddev (us)", "median (us)", "p95 (us)"});
  for (const sim::Time req : {1 * sim::kMicrosecond, 10 * sim::kMicrosecond,
                              100 * sim::kMicrosecond}) {
    const auto b = live_boxplot(req, live_samples);
    live.add_row({bench::num(sim::to_micros(req), 0), bench::num(b.mean, 2),
                  bench::num(b.stddev, 2), bench::num(b.median, 2), bench::num(b.whisker_hi, 2)});
  }
  live.print();
  std::cout << "\nNote: container hosts wake far later than the paper's isolated NUMA node;\n"
               "the model rows above carry the calibrated Fig. 1 behaviour.\n";
  return 0;
}
