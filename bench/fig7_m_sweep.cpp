// Figure 7: busy tries and CPU usage versus the number of threads M
// (2..6) at line rate.
#include "common.hpp"

using namespace metro;

int main(int argc, char** argv) {
  const bool fast = bench::parse_fast(argc, argv);
  const auto w = bench::windows(fast);

  bench::header("Figure 7 - busy tries and CPU vs M",
                "busy tries grow roughly linearly with M, CPU creeps up slightly: "
                "extra threads beyond ~3 buy robustness, not throughput");

  stats::Table table({"M (# threads)", "busy tries (%)", "CPU (%)", "wakeups/s"});
  for (const int m : {2, 3, 4, 5, 6}) {
    apps::ExperimentConfig cfg;
    cfg.driver = apps::DriverKind::kMetronome;
    cfg.met.n_threads = m;
    cfg.n_cores = std::max(3, m);
    cfg.workload.rate_mpps = 14.88;
    cfg.warmup = w.warmup;
    cfg.measure = w.measure;
    const auto r = apps::run_experiment(cfg);
    table.add_row({bench::num(m, 0), bench::num(r.busy_tries_pct, 1),
                   bench::num(r.cpu_percent, 1),
                   bench::num(static_cast<double>(r.wakeups) / sim::to_seconds(cfg.measure), 0)});
  }
  table.print();
  return 0;
}
